"""OM's address-calculation transformations.

Implements the paper's optimization catalogue over the symbolic form:

1. GP-relative conversion of address loads (``ldq rX, slot(gp)`` →
   ``lda``/``ldah`` forms) and nullification of address loads whose
   uses can all be rebased onto GP directly;
2. nullification/deletion of GP-reset pairs after calls between
   routines that share a GAT;
3. ``jsr`` → ``bsr`` conversion, retargeting past callee GP setup when
   legal, with deletion of the call site's PV-load;
4. deletion of entry GP-setup for procedures all of whose entries
   arrive with the correct GP established;
5. GAT reduction — emergent: the final link builds the GAT from the
   literal relocations that survive.

OM-simple restricts itself to 1-for-1 replacement (NOPs, no motion);
OM-full moves GP-setup pairs back to their logical position first and
deletes instead of nullifying.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.isa.registers import Reg
from repro.linker.layout import Layout
from repro.minicc.mcode import MInstr, MLabel
from repro.obs import provenance
from repro.obs.trace import TraceLog
from repro.objfile.relocations import LituseKind
from repro.om.symbolic import SymbolicModule, SymbolicProc


# -- 16-bit GP-displacement windows --------------------------------------------
#
# The GAT starts at GP - 32752 (layout.GP_BIAS) and GAT reduction only
# moves data down *toward* that floor, so -32752 is a structural lower
# bound that later rounds cannot violate; the upper bound is the signed
# 16-bit displacement limit of lda/ldq.  These predicates are the exact
# boundary conditions of the paper's conversion/nullification legality.


def gprel_nullify_in_range(d: int, offsets: list[int]) -> bool:
    """May every use of an address load be rebased directly onto GP?

    ``d`` is the symbol's displacement from GP, ``offsets`` the use
    instructions' own displacements (which fold into the rebased form).
    """
    return (
        -32752 <= d
        and all(0 <= off for off in offsets)
        and all(d + off <= 32767 for off in offsets)
    )


def gprel_direct_in_range(d: int) -> bool:
    """May an escaped literal be materialized with a single ``lda``?"""
    return -32752 <= d <= 32767


def gprel_split_in_range(targets: list[int]) -> bool:
    """May one shared ``ldah`` cover every target displacement?"""
    return max(targets) - min(targets) < 32768


@dataclass
class PassCounters:
    """Transformation counts accumulated across rounds (for stats)."""

    loads_converted: int = 0
    loads_nullified: int = 0
    pv_loads_removed: int = 0
    gp_resets_removed: int = 0
    jsr_to_bsr: int = 0
    bsr_retargeted: int = 0
    entry_setups_removed: int = 0
    instructions_nulled: int = 0  # NOPs introduced (OM-simple)
    instructions_deleted: int = 0  # items removed (OM-full)
    procs_removed: int = 0  # dead-procedure GC (extension)

    def merge(self, other: PassCounters) -> None:
        for name in vars(other):
            setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass
class Program:
    """Whole-program view binding symbolic modules to a tentative layout."""

    modules: list[SymbolicModule]
    layout: Layout
    proc_dir: dict[str, tuple[int, SymbolicProc]] = field(default_factory=dict)
    address_taken: set[str] = field(default_factory=set)
    entry: str = "__start"

    @classmethod
    def build(
        cls, modules: list[SymbolicModule], layout: Layout, entry: str = "__start"
    ) -> Program:
        prog = cls(modules, layout, entry=entry)
        for index, module in enumerate(modules):
            for proc in module.procs:
                if proc.exported or proc.name not in prog.proc_dir:
                    prog.proc_dir[proc.name] = (index, proc)
        prog.address_taken = _find_address_taken(modules)
        return prog

    def addr(self, module_index: int, symbol: str, addend: int = 0) -> int:
        return self.layout.symbol_addr(module_index, symbol) + addend

    def gp(self, module_index: int) -> int:
        return self.layout.gp_for_module(module_index)

    def group(self, module_index: int) -> int:
        return self.layout.module_group[module_index]

    def single_group(self) -> bool:
        return len(self.layout.groups) <= 1

    def callee_info(
        self, caller_module: int, name: str
    ) -> tuple[int, SymbolicProc] | None:
        """Resolve a direct-call target, honouring module-local statics."""
        module = self.modules[caller_module]
        local = module.proc_named(name)
        if local is not None and not local.exported:
            return (caller_module, local)
        return self.proc_dir.get(name)


def _find_address_taken(modules: list[SymbolicModule]) -> set[str]:
    """Procedures whose address escapes (function pointers, data refs)."""
    proc_names = {proc.name for module in modules for proc in module.procs}
    taken: set[str] = set()
    for module in modules:
        for ref in module.data_refs:
            if ref.symbol in proc_names and ref.label is None:
                taken.add(ref.symbol)
        for item in module.all_items():
            if isinstance(item, MInstr) and item.literal is not None:
                symbol, __ = item.literal
                if symbol not in proc_names:
                    continue
                if item.lit_escaped:
                    taken.add(symbol)
                else:
                    # Non-JSR uses of a procedure literal take its address.
                    for other in module.all_items():
                        if (
                            isinstance(other, MInstr)
                            and other.lituse is not None
                            and other.lituse[0] == item.uid
                            and other.lituse[1] != LituseKind.JSR
                        ):
                            taken.add(symbol)
    return taken


# -- helpers over item lists ------------------------------------------------------


def _uses_of_literal(proc: SymbolicProc, uid: int) -> list[MInstr]:
    return [
        item
        for item in proc.instructions()
        if item.lituse is not None and item.lituse[0] == uid
    ]


def _gpdisp_pairs(proc: SymbolicProc) -> list[tuple[MInstr, MInstr, str]]:
    """All (ldah, lda, base_label) GP-establishing pairs in the proc."""
    ldahs = {
        item.uid: item
        for item in proc.instructions()
        if item.gpdisp_base is not None
    }
    pairs = []
    for item in proc.instructions():
        if item.gpdisp_pair is not None and item.gpdisp_pair in ldahs:
            ldah = ldahs[item.gpdisp_pair]
            pairs.append((ldah, item, ldah.gpdisp_base))
    return pairs


def _remove_items(proc: SymbolicProc, doomed: set[int]) -> int:
    before = len(proc.items)
    proc.items = [
        item
        for item in proc.items
        if not (isinstance(item, MInstr) and item.uid in doomed)
    ]
    return before - len(proc.items)


def _nullify(item: MInstr) -> None:
    item.instr = Instruction.nop()
    item.literal = None
    item.lituse = None
    item.gpdisp_base = None
    item.gpdisp_pair = None
    item.branch = None
    item.hint = None
    item.jmptab = None
    item.gprel = None


def _entry_pair_at_top(proc: SymbolicProc) -> tuple[MInstr, MInstr] | None:
    """The entry GPDISP pair if it sits in the first two instruction slots."""
    instrs = proc.instructions()
    if len(instrs) < 2:
        return None
    first, second = instrs[0], instrs[1]
    if (
        first.gpdisp_base == proc.name
        and second.gpdisp_pair == first.uid
    ):
        return first, second
    return None


def _find_skip_label(proc: SymbolicProc) -> str | None:
    for item in proc.items:
        if isinstance(item, MLabel) and item.name == f"{proc.name}$skipgp":
            return item.name
    return None


# -- the passes ---------------------------------------------------------------------


class Transformer:
    """One round of OM transformations over the whole program."""

    def __init__(
        self,
        prog: Program,
        *,
        full: bool,
        convert_escaped: bool = False,
        trace: TraceLog | None = None,
        round_index: int = 0,
        relax=None,
        bsr_range_words: int = 1 << 20,
    ):
        self.prog = prog
        self.full = full
        # Replace far escaped literals (function pointers, out-of-window
        # array bases) with exact ldah+lda pairs.  Off by default: the
        # paper's OM leaves these in the GAT (its GAT shrinks to 3-15%
        # of original, not to zero); the knob exists as an ablation.
        self.convert_escaped = convert_escaped and full
        self.counters = PassCounters()
        self.changed = False
        self.trace = trace
        self.round_index = round_index
        #: Optional :class:`repro.layout.relax.RelaxOptions`.  When set,
        #: the calls pass defers its range decision to the span-
        #: dependent relaxation fixpoint instead of the one-shot check.
        self.relax = relax
        self.bsr_range_words = bsr_range_words
        self.relax_result = None

    # ---- provenance --------------------------------------------------------

    def _item_pc(
        self, module_index: int, proc: SymbolicProc, item: MInstr
    ) -> int | None:
        """The instruction's address under this round's tentative layout."""
        try:
            base = self.prog.addr(module_index, proc.name)
        except Exception:
            return None
        offset = 0
        for other in proc.items:
            if other is item:
                return base + offset
            if isinstance(other, MInstr):
                offset += 4
        return None

    def _emit(
        self,
        module_index: int,
        proc: SymbolicProc,
        *,
        action: str,
        pass_name: str,
        item: MInstr | None = None,
        pc: int | None = None,
        before: str = "",
        after: str = "",
        reason: str = "",
        counter=None,
    ) -> None:
        if self.trace is None:
            return
        if pc is None and item is not None:
            pc = self._item_pc(module_index, proc, item)
        provenance.emit(
            self.trace,
            action=action,
            pass_name=pass_name,
            module=self.prog.modules[module_index].name,
            proc=proc.name,
            pc=pc,
            before=before,
            after=after,
            reason=reason,
            counter=counter,
            round_index=self.round_index,
        )

    # ---- round driver -----------------------------------------------------

    def run(self) -> PassCounters:
        return self.run_passes()

    def run_passes(
        self,
        *,
        canonicalize: bool = True,
        relax: bool = True,
        calls: bool = True,
        address_loads: bool = True,
        entry_setups: bool = True,
    ) -> PassCounters:
        """Run a subset of the round's passes, in canonical order.

        The partitioned driver (:mod:`repro.wpo`) splits one monolithic
        round into a serial prologue (canonicalize + relax), a parallel
        per-shard body (calls + address loads), and a serial epilogue
        (dead entry setups).  Running all five phases back to back is
        exactly the monolithic round.
        """
        if canonicalize and self.full:
            for index, module in enumerate(self.prog.modules):
                for proc in module.procs:
                    self._canonicalize_gp_pairs(index, proc)
        if relax and self.relax is not None:
            # After canonicalization, so the candidate shapes (entry
            # pair at top, hence retarget + PV-load deletion) match
            # exactly what the calls pass will see.
            self._compute_relax()
        if calls:
            for index, module in enumerate(self.prog.modules):
                for proc in module.procs:
                    self._optimize_calls(index, proc)
        if address_loads:
            for index, module in enumerate(self.prog.modules):
                for proc in module.procs:
                    self._optimize_address_loads(index, proc)
        if entry_setups and self.full:
            self._remove_dead_entry_setups()
        return self.counters

    # ---- span-dependent relaxation (layout subsystem) -----------------------

    def _compute_relax(self) -> None:
        """Run the optimistic jsr->bsr fixpoint over every direct site.

        Candidate shapes (retarget offset, PV-load deletability) mirror
        ``_convert_call_site``; any site the iterator misses simply
        keeps its conservative jsr, so a mismatch can only lose an
        optimization, never correctness.
        """
        from repro.layout.callgraph import iter_direct_call_sites
        from repro.layout.relax import RelaxCandidate, relax_call_sites

        candidates = []
        for site in iter_direct_call_sites(self.prog.modules):
            deletable, extra = self._relax_site_shape(site)
            candidates.append(RelaxCandidate(site, deletable, extra))
        self.relax_result = relax_call_sites(
            self.prog.modules,
            candidates,
            text_base=self.prog.layout.options.text_base,
            range_words=self.relax.range_words,
            slack=self.relax.slack,
            max_iterations=self.relax.max_iterations,
            trace=self.trace,
            round_index=self.round_index,
        )

    def _relax_site_shape(self, site) -> tuple[bool, int]:
        """(PV load deleted when converted, byte offset past entry)."""
        callee = site.callee
        if not callee.uses_gp:
            skip = self.full
            extra = 0
        else:
            same_group = self.prog.group(site.callee_module) == self.prog.group(
                site.caller_module
            )
            skip = same_group and _entry_pair_at_top(callee) is not None
            extra = 8 if skip else 0
        deletable = False
        if skip and self.full:
            uses = _uses_of_literal(site.caller, site.load.uid)
            others = [use for use in uses if use is not site.jsr]
            deletable = not others and not site.load.lit_escaped
        return deletable, extra

    # ---- GP pair canonicalization (OM-full only) ------------------------------

    def _canonicalize_gp_pairs(self, module_index: int, proc: SymbolicProc) -> None:
        """Move GPDISP pairs back to their logical position: entry pairs
        to the top of the procedure, post-call pairs directly after the
        call's return point.  Safe because nothing between the logical
        and scheduled position can read or write GP, PV, or RA."""
        for ldah, lda, base in _gpdisp_pairs(proc):
            items = proc.items
            try:
                anchor = next(
                    i
                    for i, item in enumerate(items)
                    if isinstance(item, MLabel) and item.name == base
                )
            except StopIteration:
                continue
            ldah_pos = items.index(ldah)
            lda_pos = items.index(lda)
            if (ldah_pos, lda_pos) == (anchor + 1, anchor + 2):
                continue
            old_pcs = {
                item.uid: self._item_pc(module_index, proc, item)
                for item in (ldah, lda)
            } if self.trace is not None else {}
            for item in (lda, ldah):
                items.remove(item)
            anchor = next(
                i
                for i, item in enumerate(items)
                if isinstance(item, MLabel) and item.name == base
            )
            items.insert(anchor + 1, ldah)
            items.insert(anchor + 2, lda)
            self.changed = True
            for item in (ldah, lda):
                new_pc = self._item_pc(module_index, proc, item)
                self._emit(
                    module_index,
                    proc,
                    action="move",
                    pass_name="canonicalize",
                    pc=old_pcs.get(item.uid),
                    before=str(item.instr),
                    after=str(item.instr)
                    + (f" @ {new_pc:#x}" if new_pc is not None else ""),
                    reason=(
                        f"GP pair moved back to its logical position "
                        f"after label {base!r} (compile-time scheduling "
                        f"had hoisted it)"
                    ),
                )

    # ---- call optimization ------------------------------------------------------

    def _optimize_calls(self, module_index: int, proc: SymbolicProc) -> None:
        # Map literal-load uid -> item, for PV loads.
        literal_items = {
            item.uid: item
            for item in proc.instructions()
            if item.literal is not None
        }

        for item in list(proc.items):  # snapshot: sites mutate the list
            if not isinstance(item, MInstr):
                continue
            instr = item.instr
            is_direct_jsr = (
                instr.is_jump
                and instr.op.name == "jsr"
                and item.lituse is not None
                and item.lituse[1] == LituseKind.JSR
            )
            if is_direct_jsr:
                load = literal_items.get(item.lituse[0])
                if load is None or load.literal is None:
                    continue
                callee_name, addend = load.literal
                if addend:
                    continue
                self._convert_call_site(module_index, proc, item, load, callee_name)
            elif instr.is_jump and instr.op.name == "jsr":
                # Indirect call: GP-reset handling only.
                self._maybe_drop_reset(module_index, proc, item, callee=None)

    def _convert_call_site(
        self,
        module_index: int,
        proc: SymbolicProc,
        jsr: MInstr,
        load: MInstr,
        callee_name: str,
    ) -> None:
        prog = self.prog
        resolved = prog.callee_info(module_index, callee_name)
        if resolved is None:
            return
        callee_module, callee = resolved

        if self.relax_result is not None:
            # The relaxation fixpoint already decided this site exactly.
            if not self.relax_result.decisions.get(jsr.uid, False):
                return
        else:
            # One-shot conservative range check for the BSR (21-bit
            # word displacement, with 64KB of slack for code motion).
            try:
                caller_addr = prog.addr(module_index, proc.name)
                callee_addr = prog.addr(callee_module, callee.name)
            except Exception:
                return
            if (
                abs(callee_addr - caller_addr)
                >= 4 * self.bsr_range_words - (1 << 16)
            ):
                return

        skip_ok = False
        target: tuple[str, int]
        if not callee.uses_gp:
            # No GP setup at all, so PV is never needed.  Recognizing
            # this requires per-procedure GP knowledge, which the
            # paper's OM-simple (destination lookup only, "no analysis
            # at all") does not apply — only OM-full drops the PV-load.
            skip_ok = self.full
            target = (callee.name, 0)
        else:
            same_group = prog.group(callee_module) == prog.group(module_index)
            pair = _entry_pair_at_top(callee)
            if same_group and pair is not None:
                # The GP pair is the first two instructions (OM-full put
                # it there; OM-simple only sees this when compile-time
                # scheduling happened to leave it in place).
                skip_ok = True
                label = _find_skip_label(callee)
                if label is None:
                    label = f"{callee.name}$skipgp"
                    insert_at = callee.items.index(pair[1]) + 1
                    callee.items.insert(insert_at, MLabel(label, is_target=True))
                target = (label, 0)
                if callee_module != module_index:
                    callee.export_labels.add(label)
            else:
                skip_ok = False
                target = (callee.name, 0)

        # Convert jsr -> bsr.  Without a retarget past the callee's GP
        # setup, the PV-load must stay: "the compiled code normally does
        # so anyway, because the called procedure needs the PV in order
        # to set up its value for GP" — so the lituse link survives too.
        before = str(jsr.instr)
        jsr_pc = self._item_pc(module_index, proc, jsr)
        jsr.instr = Instruction.branch("bsr", Reg.RA, 0)
        jsr.branch = target
        jsr.hint = None
        self.counters.jsr_to_bsr += 1
        self.changed = True
        self._emit(
            module_index,
            proc,
            action="convert",
            pass_name="calls",
            pc=jsr_pc,
            before=before,
            after=f"bsr ra, {target[0]}",
            reason=f"direct call to {callee.name!r} within bsr range",
            counter="jsr_to_bsr",
        )

        if skip_ok:
            jsr.lituse = None
            remaining = _uses_of_literal(proc, load.uid)
            if not remaining and not load.lit_escaped:
                self._kill(
                    module_index,
                    proc,
                    load,
                    pass_name="calls",
                    reason=(
                        f"PV-load unnecessary: call retargeted past "
                        f"{callee.name!r}'s GP setup"
                    ),
                    extra_counter="pv_loads_removed",
                )
                self.counters.pv_loads_removed += 1
            self.counters.bsr_retargeted += 1
            self._emit(
                module_index,
                proc,
                action="retarget",
                pass_name="calls",
                pc=jsr_pc,
                before=f"bsr ra, {callee.name}",
                after=f"bsr ra, {target[0]}",
                reason=(
                    "callee GP setup skipped: caller's GP is already "
                    "correct at the call site"
                    if callee.uses_gp
                    else "callee never establishes GP, PV is dead"
                ),
                counter="bsr_retargeted",
            )

        self._maybe_drop_reset(module_index, proc, jsr, callee=(callee_module, callee))

    def _maybe_drop_reset(
        self,
        module_index: int,
        proc: SymbolicProc,
        call_item: MInstr,
        callee: tuple[int, SymbolicProc] | None,
    ) -> None:
        """Remove the GP-reset pair after a call when GP is provably
        unchanged across it."""
        prog = self.prog
        if prog.single_group():
            safe = True
        elif callee is not None:
            callee_module, callee_proc = callee
            same = prog.group(callee_module) == prog.group(module_index)
            safe = same and (callee_proc.uses_gp or _is_reset_free_leaf(callee_proc))
        else:
            safe = False
        if not safe:
            return

        base_label = self._return_label_after(proc, call_item)
        if base_label is None:
            return
        callee_name = callee[1].name if callee is not None else "<indirect>"
        for ldah, lda, base in _gpdisp_pairs(proc):
            if base != base_label:
                continue
            reason = f"GP provably unchanged across call to {callee_name}"
            self._kill(
                module_index, proc, ldah,
                pass_name="gp-resets", reason=reason,
                extra_counter="gp_resets_removed",
            )
            self._kill(
                module_index, proc, lda,
                pass_name="gp-resets", reason=reason,
            )
            self.counters.gp_resets_removed += 1
            self.changed = True
            return

    @staticmethod
    def _return_label_after(proc: SymbolicProc, call_item: MInstr) -> str | None:
        items = proc.items
        index = items.index(call_item)
        for item in items[index + 1 :]:
            if isinstance(item, MLabel):
                return item.name
            return None
        return None

    # ---- address-load optimization ----------------------------------------------

    def _optimize_address_loads(self, module_index: int, proc: SymbolicProc) -> None:
        prog = self.prog
        gp = prog.gp(module_index)
        for item in list(proc.instructions()):
            if item.literal is None:
                continue
            uses = _uses_of_literal(proc, item.uid)
            if any(kind == LituseKind.JSR for __, kind in (u.lituse for u in uses)):
                continue  # unconverted call site keeps its PV load
            symbol, addend = item.literal
            try:
                target = prog.addr(module_index, symbol, addend)
            except Exception:
                continue
            d = target - gp

            if not item.lit_escaped:
                offsets = [use.instr.disp for use in uses]
                if not uses:
                    # Dead address load.
                    self._kill(
                        module_index, proc, item,
                        pass_name="address-loads",
                        reason=f"address load of {symbol!r} has no remaining uses",
                        extra_counter="loads_nullified",
                    )
                    self.counters.loads_nullified += 1
                    self.changed = True
                    continue
                if gprel_nullify_in_range(d, offsets):
                    # Nullify: every use is rebased directly onto GP.
                    for use, off in zip(uses, offsets):
                        before = str(use.instr)
                        use_pc = self._item_pc(module_index, proc, use)
                        use.instr = use.instr.replace(rb=int(Reg.GP), disp=0)
                        use.gprel = ("gprel16", symbol, addend + off, 0)
                        use.lituse = None
                        self._emit(
                            module_index, proc,
                            action="convert", pass_name="address-loads",
                            pc=use_pc, before=before, after=str(use.instr),
                            reason=(
                                f"use rebased directly onto GP "
                                f"(d={d + off:+d} within 16-bit window)"
                            ),
                        )
                    self._kill(
                        module_index, proc, item,
                        pass_name="address-loads",
                        reason=(
                            f"address load of {symbol!r} nullified: every "
                            f"use rebased onto GP (d={d:+d})"
                        ),
                        extra_counter="loads_nullified",
                    )
                    self.counters.loads_nullified += 1
                    self.changed = True
                    continue
                if gprel_split_in_range([addend + off for off in offsets]):
                    # Convert to LDAH; uses get the low halves.  The
                    # group id only has to be unique within the module
                    # (relocation matches high/low parts per module);
                    # the load's own uid is, and — unlike a counter
                    # reset per round — can never collide with a group
                    # made in an earlier round or another worker.
                    # Reassembly renumbers the ids densely, so they
                    # never reach the object file.
                    group = item.uid
                    dst = item.instr.ra
                    before = str(item.instr)
                    item_pc = self._item_pc(module_index, proc, item)
                    item.instr = Instruction.mem("ldah", dst, Reg.GP, 0)
                    item.literal = None
                    item.lit_escaped = False
                    item.gprel = ("gprelhigh", symbol, addend, group)
                    for use, off in zip(uses, offsets):
                        use_before = str(use.instr)
                        use_pc = self._item_pc(module_index, proc, use)
                        use.instr = use.instr.replace(disp=0)
                        use.gprel = ("gprellow", symbol, addend + off, group)
                        use.lituse = None
                        self._emit(
                            module_index, proc,
                            action="convert", pass_name="address-loads",
                            pc=use_pc, before=use_before, after=str(use.instr),
                            reason=f"use takes the low half of {symbol!r}",
                        )
                    self.counters.loads_converted += 1
                    self.changed = True
                    self._emit(
                        module_index, proc,
                        action="convert", pass_name="address-loads",
                        pc=item_pc, before=before, after=str(item.instr),
                        reason=(
                            f"GAT load of {symbol!r} converted to a shared "
                            f"ldah high half (d={d:+d} beyond direct window)"
                        ),
                        counter="loads_converted",
                    )
                    continue
                continue

            # Escaped literal: the register must hold the exact address.
            if gprel_direct_in_range(d):
                dst = item.instr.ra
                before = str(item.instr)
                item_pc = self._item_pc(module_index, proc, item)
                item.instr = Instruction.mem("lda", dst, Reg.GP, 0)
                item.literal = None
                item.lit_escaped = False
                item.gprel = ("gprel16", symbol, addend, 0)
                for use in uses:
                    use.lituse = None
                self.counters.loads_converted += 1
                self.changed = True
                self._emit(
                    module_index, proc,
                    action="convert", pass_name="address-loads",
                    pc=item_pc, before=before, after=str(item.instr),
                    reason=(
                        f"escaped GAT load of {symbol!r} materialized with "
                        f"a single lda (d={d:+d} in 16-bit window)"
                    ),
                    counter="loads_converted",
                )
            elif self.convert_escaped:
                # Replace the load with an exact ldah+lda pair (2-for-1;
                # only OM-full may change instruction counts).
                group = item.uid
                dst = item.instr.ra
                before = str(item.instr)
                item_pc = self._item_pc(module_index, proc, item)
                item.instr = Instruction.mem("ldah", dst, Reg.GP, 0)
                item.literal = None
                item.lit_escaped = False
                item.gprel = ("gprelhigh", symbol, addend, group)
                lda = MInstr(
                    Instruction.mem("lda", dst, dst, 0),
                    gprel=("gprellow", symbol, addend, group),
                )
                proc.items.insert(proc.items.index(item) + 1, lda)
                for use in uses:
                    use.lituse = None
                self.counters.loads_converted += 1
                self.changed = True
                self._emit(
                    module_index, proc,
                    action="convert", pass_name="address-loads",
                    pc=item_pc, before=before,
                    after=f"{item.instr}; {lda.instr}",
                    reason=(
                        f"far escaped GAT load of {symbol!r} replaced with "
                        f"an exact ldah+lda pair (2-for-1 ablation)"
                    ),
                    counter="loads_converted",
                )

    # ---- entry GP-setup removal (OM-full) -----------------------------------------

    def _remove_dead_entry_setups(self) -> None:
        prog = self.prog
        # A procedure's entry GP-setup can go only when every remaining
        # entry arrives with the correct GP already established: no
        # address-taken uses, no surviving literals (unconverted call
        # sites), no stored entry pointers, and no branch to the entry
        # label itself (skip-label branches land past the pair).
        blocked: set[str] = set(prog.address_taken)
        blocked.add(prog.entry)
        for module in prog.modules:
            for ref in module.data_refs:
                if ref.label is None:
                    blocked.add(ref.symbol)
            for item in module.all_items():
                if not isinstance(item, MInstr):
                    continue
                if item.literal is not None:
                    blocked.add(item.literal[0])
                if item.branch is not None:
                    blocked.add(item.branch[0])
                if item.hint is not None:
                    blocked.add(item.hint)

        for module_index, module in enumerate(prog.modules):
            for proc in module.procs:
                if proc.name in blocked or not proc.uses_gp:
                    continue
                pair = _entry_pair_at_top(proc)
                if pair is None:
                    continue
                reason = (
                    "every remaining entry arrives with the correct GP "
                    "already established"
                )
                self._kill(
                    module_index, proc, pair[0],
                    pass_name="entry-setups", reason=reason,
                    extra_counter="entry_setups_removed",
                )
                self._kill(
                    module_index, proc, pair[1],
                    pass_name="entry-setups", reason=reason,
                )
                self.counters.entry_setups_removed += 1
                self.changed = True

    # ---- kill helper ---------------------------------------------------------------

    def _kill(
        self,
        module_index: int,
        proc: SymbolicProc,
        item: MInstr,
        *,
        pass_name: str = "",
        reason: str = "",
        extra_counter: str | None = None,
    ) -> None:
        before = str(item.instr)
        pc = self._item_pc(module_index, proc, item)
        if self.full:
            _remove_items(proc, {item.uid})
            self.counters.instructions_deleted += 1
            counter = ["instructions_deleted"]
            action, after = "delete", "(deleted)"
        else:
            _nullify(item)
            self.counters.instructions_nulled += 1
            counter = ["instructions_nulled"]
            action, after = "nullify", str(item.instr)
        if extra_counter is not None:
            counter.append(extra_counter)
        self._emit(
            module_index, proc,
            action=action, pass_name=pass_name or "kill",
            pc=pc, before=before, after=after, reason=reason,
            counter=counter,
        )


def _is_reset_free_leaf(proc: SymbolicProc) -> bool:
    """A procedure that cannot change GP (no gpdisp pairs, no calls)."""
    for item in proc.instructions():
        if item.gpdisp_base is not None or item.gpdisp_pair is not None:
            return False
        if item.instr.is_call:
            return False
    return True
