"""Static measurement collection — the numerators and denominators of
the paper's Figures 3, 4, and 5 and the GAT-reduction statistic."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.objfile.relocations import LituseKind
from repro.om.symbolic import SymbolicModule


@dataclass
class CodeCounts:
    """Counts over one snapshot of the program's symbolic form."""

    instructions: int = 0
    nops: int = 0
    addr_loads: int = 0  # surviving GAT address loads (incl. PV loads)
    pv_loads: int = 0  # call sites still loading PV from the GAT
    gp_resets: int = 0  # call sites still resetting GP afterwards
    calls: int = 0  # all call sites (jsr or call-shaped bsr)
    indirect_calls: int = 0


def count_code(modules: list[SymbolicModule]) -> CodeCounts:
    """Measure the current symbolic form."""
    counts = CodeCounts()
    proc_names = {proc.name for module in modules for proc in module.procs}
    call_labels = set(proc_names)
    for module in modules:
        for proc in module.procs:
            call_labels.add(f"{proc.name}$postgp")
            call_labels.add(f"{proc.name}$skipgp")

    for module in modules:
        for proc in module.procs:
            jsr_uses: set[int] = set()
            for item in proc.instructions():
                if item.lituse is not None and item.lituse[1] == LituseKind.JSR:
                    jsr_uses.add(item.lituse[0])
            for item in proc.instructions():
                counts.instructions += 1
                instr = item.instr
                if instr.is_nop:
                    counts.nops += 1
                if item.literal is not None:
                    counts.addr_loads += 1
                    if item.uid in jsr_uses:
                        counts.pv_loads += 1
                if (
                    instr.is_jump
                    and instr.op.name == "jsr"
                    and item.lituse is None
                ):
                    # Calls through procedure variables always need PV
                    # established; no optimization level removes this.
                    counts.pv_loads += 1
                if item.gpdisp_base is not None and item.gpdisp_base != proc.name:
                    counts.gp_resets += 1
                if instr.is_jump and instr.op.name == "jsr":
                    counts.calls += 1
                    if item.lituse is None:
                        counts.indirect_calls += 1
                elif (
                    instr.is_branch
                    and instr.op.name == "bsr"
                    and item.branch is not None
                    and item.branch[0] in call_labels
                ):
                    counts.calls += 1
    return counts


@dataclass
class OMStats:
    """Before/after measurements of one OM link."""

    level: str
    before: CodeCounts = field(default_factory=CodeCounts)
    after: CodeCounts = field(default_factory=CodeCounts)
    loads_converted: int = 0
    loads_nullified: int = 0
    gat_bytes_before: int = 0
    gat_bytes_after: int = 0
    text_bytes_before: int = 0
    text_bytes_after: int = 0
    # Layout subsystem telemetry (zero unless the PGO knobs are on).
    procs_moved: int = 0  # procedures repositioned by Pettis-Hansen
    relax_iterations: int = 0  # fixpoint passes, summed over rounds
    relax_demoted: int = 0  # optimistic bsr sites demoted back to jsr

    # -- the paper's derived fractions ------------------------------------

    @property
    def frac_loads_converted(self) -> float:
        """Fig. 3, dark bars: address loads converted to lda/ldah."""
        return self.loads_converted / max(self.before.addr_loads, 1)

    @property
    def frac_loads_nullified(self) -> float:
        """Fig. 3, light bars: address loads nullified or deleted."""
        return self.loads_nullified / max(self.before.addr_loads, 1)

    @property
    def frac_loads_removed(self) -> float:
        return self.frac_loads_converted + self.frac_loads_nullified

    @property
    def frac_calls_with_pv_load(self) -> float:
        """Fig. 4 top: fraction of calls still requiring a PV-load."""
        return self.after.pv_loads / max(self.before.calls, 1)

    @property
    def frac_calls_with_gp_reset(self) -> float:
        """Fig. 4 bottom: fraction of calls still requiring GP-reset."""
        return self.after.gp_resets / max(self.before.calls, 1)

    @property
    def frac_instructions_nullified(self) -> float:
        """Fig. 5: fraction of instructions nullified (or deleted)."""
        removed = (self.before.instructions - self.after.instructions) + (
            self.after.nops - self.before.nops
        )
        return removed / max(self.before.instructions, 1)

    @property
    def gat_shrink_ratio(self) -> float:
        """GAT size after OM as a fraction of the original (§5.1)."""
        return self.gat_bytes_after / max(self.gat_bytes_before, 1)
