"""OM's optional link-time rescheduling pass.

Re-runs basic-block list scheduling on the transformed code — the
original compile-time schedule was computed in the presence of address
loads that OM has since removed — and quadword-aligns instructions that
are the targets of backward branches, "intended to improve the behavior
of the AXP's dual-issue and cache" (the paper found the payoff small,
and negative for ``ear``; the alignment knob exists for that ablation).
"""

from __future__ import annotations

from repro.minicc.mcode import MInstr, MLabel
from repro.minicc.sched import schedule_items
from repro.om.symbolic import SymbolicModule


def om_schedule(modules: list[SymbolicModule], *, align_loop_targets: bool = True) -> None:
    """Schedule every procedure, in place."""
    for module in modules:
        for proc in module.procs:
            proc.items = schedule_items(proc.items)
            if align_loop_targets:
                _mark_backward_targets(proc.items)


def _mark_backward_targets(items) -> None:
    """Quadword-align labels targeted by backward branches."""
    seen: dict[str, MLabel] = {}
    for item in items:
        if isinstance(item, MLabel):
            seen[item.name] = item
        elif isinstance(item, MInstr) and item.branch is not None:
            label = seen.get(item.branch[0])
            if label is not None:
                label.align = 8
