"""OM's optional link-time rescheduling pass.

Re-runs basic-block list scheduling on the transformed code — the
original compile-time schedule was computed in the presence of address
loads that OM has since removed — and quadword-aligns instructions that
are the targets of backward branches, "intended to improve the behavior
of the AXP's dual-issue and cache" (the paper found the payoff small,
and negative for ``ear``; the alignment knob exists for that ablation).

With a :class:`~repro.obs.trace.TraceLog` attached, every procedure
whose instruction order changed emits a ``move`` provenance event (how
many instructions were repositioned), and every alignment decision
emits its own event.
"""

from __future__ import annotations

from repro.minicc.mcode import MInstr, MLabel
from repro.minicc.sched import schedule_items
from repro.obs import provenance
from repro.obs.trace import TraceLog
from repro.om.symbolic import SymbolicModule


def om_schedule(
    modules: list[SymbolicModule],
    *,
    align_loop_targets: bool = True,
    trace: TraceLog | None = None,
) -> None:
    """Schedule every procedure, in place."""
    for module in modules:
        for proc in module.procs:
            before_order = [
                item.uid for item in proc.items if isinstance(item, MInstr)
            ]
            proc.items = schedule_items(proc.items)
            if trace is not None:
                after_order = [
                    item.uid for item in proc.items if isinstance(item, MInstr)
                ]
                moved = sum(
                    1
                    for index, uid in enumerate(after_order)
                    if index >= len(before_order) or before_order[index] != uid
                )
                if moved:
                    provenance.emit(
                        trace,
                        action="move",
                        pass_name="sched",
                        module=module.name,
                        proc=proc.name,
                        pc=None,
                        before=f"{len(before_order)} instructions (compile-time order)",
                        after=f"{moved} instructions repositioned",
                        reason=(
                            "link-time list rescheduling after OM removed "
                            "address-calculation code"
                        ),
                    )
            if align_loop_targets:
                _mark_backward_targets(proc.items, trace, module.name, proc.name)


def _mark_backward_targets(
    items, trace: TraceLog | None = None, module: str = "", proc: str = ""
) -> None:
    """Quadword-align labels targeted by backward branches."""
    seen: dict[str, MLabel] = {}
    for item in items:
        if isinstance(item, MLabel):
            seen[item.name] = item
        elif isinstance(item, MInstr) and item.branch is not None:
            label = seen.get(item.branch[0])
            if label is not None:
                if label.align != 8:
                    provenance.emit(
                        trace,
                        action="move",
                        pass_name="sched",
                        module=module,
                        proc=proc,
                        pc=None,
                        before=f"label {label.name!r}",
                        after=f"label {label.name!r} (align=8)",
                        reason="backward-branch target quadword-aligned",
                    )
                label.align = 8
