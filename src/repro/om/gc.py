"""Link-time dead-procedure removal (an OM extension).

The paper positions OM as the vehicle for "more sophisticated link-time
optimization"; this pass is the classic first example: with the whole
statically-linked program visible, procedures unreachable from the
entry point can be deleted outright — including the unused parts of
library members the archive pull-in dragged along.

Reachability roots are the entry procedure and every address-taken
procedure (a stored function pointer may be called from anywhere).
Edges are branches into a procedure (entry or interior label), literal
references to a procedure, and jump-table data references.
"""

from __future__ import annotations

from repro.minicc.mcode import MInstr
from repro.obs import provenance
from repro.obs.trace import TraceLog
from repro.om.symbolic import SymbolicModule, SymbolicProc
from repro.om.transform import _find_address_taken


def _owner_of_label(label: str) -> str:
    """Labels are ``proc`` or ``proc$suffix`` by construction."""
    return label.split("$", 1)[0]


def remove_dead_procedures(
    modules: list[SymbolicModule],
    entry: str = "__start",
    *,
    trace: TraceLog | None = None,
) -> int:
    """Delete unreachable procedures; returns how many were removed."""
    all_procs: dict[str, tuple[SymbolicModule, SymbolicProc]] = {}
    for module in modules:
        for proc in module.procs:
            # Exported names are unique program-wide; locals may collide
            # across modules, so qualify them in the worklist keying.
            all_procs.setdefault(proc.name, (module, proc))

    def refs_of(proc: SymbolicProc) -> set[str]:
        out: set[str] = set()
        for item in proc.items:
            if not isinstance(item, MInstr):
                continue
            if item.branch is not None:
                out.add(_owner_of_label(item.branch[0]))
            if item.literal is not None:
                out.add(_owner_of_label(item.literal[0]))
            if item.hint is not None:
                out.add(item.hint)
        return out

    roots = {entry} | _find_address_taken(modules)
    for module in modules:
        for ref in module.data_refs:
            # A stored code address (function pointer in data) roots its
            # procedure; jump tables root their owner, which is already
            # reachable when the table's dispatch code is.
            if ref.label is None and ref.symbol in all_procs:
                roots.add(ref.symbol)

    reachable: set[str] = set()
    worklist = [name for name in roots if name in all_procs]
    while worklist:
        name = worklist.pop()
        if name in reachable:
            continue
        reachable.add(name)
        __, proc = all_procs[name]
        for target in refs_of(proc):
            if target in all_procs and target not in reachable:
                worklist.append(target)

    removed = 0
    for module in modules:
        dead = [proc.name for proc in module.procs if proc.name not in reachable]
        if not dead:
            continue
        dead_set = set(dead)
        for proc in module.procs:
            if proc.name in dead_set:
                provenance.emit(
                    trace,
                    action="gc-drop",
                    pass_name="gc",
                    module=module.name,
                    proc=proc.name,
                    pc=None,
                    before=f"{len(proc.instructions())} instructions",
                    after="(procedure removed)",
                    reason="unreachable from entry and address-taken roots",
                    counter="procs_removed",
                )
        module.procs = [p for p in module.procs if p.name not in dead_set]
        # Jump tables of deleted procedures would dangle: drop their
        # relocations (the table bytes stay, harmlessly unreferenced).
        module.data_refs = [
            ref
            for ref in module.data_refs
            if not (ref.proc in dead_set or (ref.label is None and ref.symbol in dead_set))
        ]
        removed += len(dead)
    return removed
