"""Translation between object code and OM's symbolic form.

``translate_module`` decodes a module's text into per-procedure lists of
:class:`MInstr`/:class:`MLabel` items.  Branch displacements become
label references, GPDISP pairs and literal loads/uses are re-linked by
item uid from the relocation records, and jump-table entries in data
become label references into text.  After transformation,
``reassemble_module`` emits a fresh object module: instruction offsets,
branch displacements, procedure sizes, and jump-table entries are all
recomputed — which is precisely why OM can delete and reorder
instructions freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.encoding import decode_stream, encode_stream
from repro.minicc.mcode import MInstr, MItem, MLabel
from repro.objfile.objfile import ObjectFile
from repro.objfile.relocations import LituseKind, Relocation, RelocType
from repro.objfile.sections import Section, SectionKind
from repro.objfile.symbols import Binding, ProcInfo, Symbol, SymbolKind


class TranslationError(Exception):
    """Object code OM cannot translate (should not happen for toolchain
    output; indicates corruption or an unsupported construct)."""


@dataclass
class SymbolicProc:
    name: str
    items: list[MItem] = field(default_factory=list)
    exported: bool = True
    uses_gp: bool = True
    frame_size: int = 0
    #: Labels that must be visible to other modules (OM's cross-module
    #: bsr retargets past callee GP setup).
    export_labels: set[str] = field(default_factory=set)

    def instructions(self) -> list[MInstr]:
        return [item for item in self.items if isinstance(item, MInstr)]


@dataclass
class DataRef:
    """A 64-bit relocated datum in a data section.

    When ``label`` is set the datum points into text and its value is
    recomputed after code motion (jump tables, stored code addresses).
    """

    section: SectionKind
    offset: int
    symbol: str
    addend: int = 0
    label: str | None = None
    proc: str | None = None  # containing procedure of the label


@dataclass
class SymbolicModule:
    name: str
    procs: list[SymbolicProc] = field(default_factory=list)
    data_sections: dict[SectionKind, Section] = field(default_factory=dict)
    data_refs: list[DataRef] = field(default_factory=list)
    other_symbols: list[Symbol] = field(default_factory=list)

    def proc_named(self, name: str) -> SymbolicProc | None:
        for proc in self.procs:
            if proc.name == name:
                return proc
        return None

    def all_items(self):
        for proc in self.procs:
            yield from proc.items


# -- translation ---------------------------------------------------------------


def translate_module(obj: ObjectFile) -> SymbolicModule:
    """Recover the symbolic form of one object module."""
    out = SymbolicModule(obj.name)
    text_section = obj.sections.get(SectionKind.TEXT)
    text = bytes(text_section.data) if text_section else b""
    instrs = decode_stream(text)
    nwords = len(instrs)

    procs = obj.procedures()
    defined = {s.name: s for s in obj.symbols if s.is_defined}

    def proc_at(offset: int) -> Symbol:
        for sym in procs:
            if sym.offset <= offset < sym.offset + sym.size:
                return sym
        raise TranslationError(f"{obj.name}: no procedure covers text+{offset:#x}")

    # Index relocations by type and offset.
    literal_at: dict[int, Relocation] = {}
    lituse_at: dict[int, Relocation] = {}
    gpdisp_at: dict[int, Relocation] = {}
    braddr_at: dict[int, Relocation] = {}
    hint_at: dict[int, Relocation] = {}
    jmptab_at: dict[int, Relocation] = {}
    gprel_at: dict[int, Relocation] = {}
    for reloc in obj.relocations:
        if reloc.section is not SectionKind.TEXT:
            continue
        table = {
            RelocType.LITERAL: literal_at,
            RelocType.LITUSE: lituse_at,
            RelocType.GPDISP: gpdisp_at,
            RelocType.BRADDR: braddr_at,
            RelocType.HINT: hint_at,
            RelocType.JMPTAB: jmptab_at,
            RelocType.GPREL16: gprel_at,
            RelocType.GPRELHIGH: gprel_at,
            RelocType.GPRELLOW: gprel_at,
        }.get(reloc.type)
        if table is None:
            raise TranslationError(
                f"{obj.name}: cannot translate relocation {reloc.type.value}"
            )
        table[reloc.offset] = reloc

    # ---- decide which offsets need labels --------------------------------
    target_offsets: set[int] = set()
    marker_offsets: set[int] = set()
    lda_to_ldah: dict[int, int] = {}

    for offset, reloc in gpdisp_at.items():
        marker_offsets.add(reloc.extra)
        lda_to_ldah[offset + reloc.addend] = offset

    for index, instr in enumerate(instrs):
        offset = 4 * index
        if instr.is_branch and offset not in braddr_at:
            target_offsets.add(offset + 4 + 4 * instr.disp)
    for offset, reloc in braddr_at.items():
        target = defined.get(reloc.symbol)
        if target is not None and reloc.addend:
            target_offsets.add(target.offset + reloc.addend)

    # Jump tables and other text-pointing data.
    data_kinds = (SectionKind.DATA, SectionKind.SDATA)
    for reloc in obj.relocations:
        if reloc.type is not RelocType.REFQUAD or reloc.section not in data_kinds:
            continue
        target = defined.get(reloc.symbol)
        if target is not None and target.kind is SymbolKind.PROC and reloc.addend:
            target_offsets.add(target.offset + reloc.addend)

    for offset in target_offsets | marker_offsets:
        if offset % 4 or offset > 4 * nwords:
            raise TranslationError(f"{obj.name}: misaligned label target {offset:#x}")

    def label_name(offset: int) -> str:
        sym = proc_at(offset) if offset < 4 * nwords else procs[-1]
        if offset == sym.offset:
            return sym.name
        return f"{sym.name}$L{offset - sym.offset:x}"

    # ---- build items ------------------------------------------------------
    item_at: dict[int, MInstr] = {}
    proc_entry_offsets = {sym.offset for sym in procs}

    for sym in procs:
        proc = SymbolicProc(
            sym.name,
            exported=sym.binding is Binding.GLOBAL,
            uses_gp=sym.proc.uses_gp if sym.proc else True,
            frame_size=sym.proc.frame_size if sym.proc else 0,
        )
        proc.items.append(MLabel(sym.name, is_target=True))
        for index in range(sym.offset // 4, (sym.offset + sym.size) // 4):
            offset = 4 * index
            if offset != sym.offset and offset in target_offsets:
                proc.items.append(MLabel(label_name(offset), is_target=True))
            if (
                offset in marker_offsets
                and offset not in target_offsets
                and offset not in proc_entry_offsets
            ):
                proc.items.append(MLabel(label_name(offset), is_target=False))
            item = MInstr(instrs[index])
            item_at[offset] = item
            _annotate(
                item,
                offset,
                literal_at,
                lituse_at,
                gpdisp_at,
                braddr_at,
                hint_at,
                jmptab_at,
                gprel_at,
                lda_to_ldah,
                item_at,
                label_name,
                defined,
            )
            proc.items.append(item)
        out.procs.append(proc)

    # ---- data sections ----------------------------------------------------
    for kind, section in obj.sections.items():
        if kind is SectionKind.TEXT:
            continue
        copied = Section(kind, alignment=section.alignment)
        if kind.has_bytes:
            copied.data = bytearray(section.data)
        else:
            copied.bss_size = section.bss_size
        out.data_sections[kind] = copied

    for reloc in obj.relocations:
        if reloc.type is not RelocType.REFQUAD:
            continue
        target = defined.get(reloc.symbol)
        ref = DataRef(reloc.section, reloc.offset, reloc.symbol, reloc.addend)
        if target is not None and target.kind is SymbolKind.PROC and reloc.addend:
            ref.label = label_name(target.offset + reloc.addend)
            ref.proc = target.name
            ref.addend = 0
        out.data_refs.append(ref)

    out.other_symbols = [
        sym for sym in obj.symbols if sym.kind is not SymbolKind.PROC
    ]
    return out


_GPREL_KINDS = {
    RelocType.GPREL16: "gprel16",
    RelocType.GPRELHIGH: "gprelhigh",
    RelocType.GPRELLOW: "gprellow",
}


def _annotate(
    item: MInstr,
    offset: int,
    literal_at,
    lituse_at,
    gpdisp_at,
    braddr_at,
    hint_at,
    jmptab_at,
    gprel_at,
    lda_to_ldah,
    item_at,
    label_name,
    defined,
) -> None:
    reloc = literal_at.get(offset)
    if reloc is not None:
        item.literal = (reloc.symbol, reloc.addend)
        item.lit_escaped = bool(reloc.extra)
    reloc = lituse_at.get(offset)
    if reloc is not None:
        load_item = item_at.get(reloc.addend)
        if load_item is None:
            raise TranslationError(f"lituse at {offset:#x} references missing load")
        item.lituse = (load_item.uid, LituseKind(reloc.extra))
    reloc = gpdisp_at.get(offset)
    if reloc is not None:
        item.gpdisp_base = label_name(reloc.extra)
    ldah_offset = lda_to_ldah.get(offset)
    if ldah_offset is not None:
        ldah_item = item_at.get(ldah_offset)
        if ldah_item is None:
            raise TranslationError(f"gpdisp lda at {offset:#x} precedes its ldah")
        item.gpdisp_pair = ldah_item.uid
    reloc = braddr_at.get(offset)
    if reloc is not None:
        target = defined.get(reloc.symbol)
        if target is not None and reloc.addend:
            item.branch = (label_name(target.offset + reloc.addend), 0)
        else:
            item.branch = (reloc.symbol, reloc.addend)
    elif item.instr.is_branch:
        item.branch = (label_name(offset + 4 + 4 * item.instr.disp), 0)
    reloc = hint_at.get(offset)
    if reloc is not None:
        item.hint = reloc.symbol
    reloc = jmptab_at.get(offset)
    if reloc is not None:
        item.jmptab = (reloc.symbol, reloc.addend)
    reloc = gprel_at.get(offset)
    if reloc is not None:
        item.gprel = (
            _GPREL_KINDS[reloc.type], reloc.symbol, reloc.addend, reloc.extra
        )


# -- reassembly ----------------------------------------------------------------


def reassemble_module(module: SymbolicModule) -> tuple[ObjectFile, dict[int, int]]:
    """Emit a fresh object module from symbolic form.

    Returns the object plus a map from item uid to its new text offset
    (used by OM's analysis to reason about final addresses).
    """
    obj = ObjectFile(module.name)
    nop_word = _nop_instruction()

    # Pass 1: offsets.
    label_offset: dict[str, int] = {}
    uid_offset: dict[int, int] = {}
    proc_bounds: dict[str, tuple[int, int]] = {}
    emitted: list[MInstr | None] = []  # None = alignment nop
    cursor = 0
    for proc in module.procs:
        start = cursor
        for item in proc.items:
            if isinstance(item, MLabel):
                if item.align and cursor % item.align:
                    while cursor % item.align:
                        emitted.append(None)
                        cursor += 4
                if item.name in label_offset:
                    raise TranslationError(f"duplicate label {item.name}")
                label_offset[item.name] = cursor
            else:
                uid_offset[item.uid] = cursor
                emitted.append(item)
                cursor += 4
        proc_bounds[proc.name] = (start, cursor - start)

    # Pass 2: instructions and relocations.
    instrs = []
    relocs: list[Relocation] = []
    referenced: set[str] = set()
    gpdisp_lda_of: dict[int, int] = {}  # ldah uid -> lda offset
    for item in emitted:
        if item is not None and item.gpdisp_pair is not None:
            gpdisp_lda_of[item.gpdisp_pair] = uid_offset[item.uid]

    proc_names = {proc.name for proc in module.procs}
    for item in emitted:
        if item is None:
            instrs.append(nop_word)
            continue
        instr = item.instr
        offset = uid_offset[item.uid]
        if item.branch is not None:
            # Procedure entries stay symbolic (BRADDR) so the final link
            # resolves them — identical to what the compiler emitted;
            # internal labels resolve here.
            name, addend = item.branch
            if name in label_offset and name not in proc_names:
                target = label_offset[name] + addend
                instr = instr.replace(disp=(target - (offset + 4)) // 4)
            else:
                relocs.append(
                    Relocation(RelocType.BRADDR, SectionKind.TEXT, offset, name, addend)
                )
                referenced.add(name)
                instr = instr.replace(disp=0)
        if item.literal is not None:
            symbol, addend = item.literal
            relocs.append(
                Relocation(
                    RelocType.LITERAL,
                    SectionKind.TEXT,
                    offset,
                    symbol,
                    addend,
                    int(item.lit_escaped),
                )
            )
            referenced.add(symbol)
        if item.lituse is not None:
            load_uid, kind = item.lituse
            if load_uid not in uid_offset:
                raise TranslationError("lituse references a deleted literal load")
            relocs.append(
                Relocation(
                    RelocType.LITUSE,
                    SectionKind.TEXT,
                    offset,
                    None,
                    uid_offset[load_uid],
                    int(kind),
                )
            )
        if item.gpdisp_base is not None:
            lda_offset = gpdisp_lda_of.get(item.uid)
            if lda_offset is None:
                raise TranslationError("gpdisp ldah lost its paired lda")
            relocs.append(
                Relocation(
                    RelocType.GPDISP,
                    SectionKind.TEXT,
                    offset,
                    None,
                    lda_offset - offset,
                    label_offset[item.gpdisp_base],
                )
            )
        if item.hint is not None:
            relocs.append(
                Relocation(RelocType.HINT, SectionKind.TEXT, offset, item.hint)
            )
            referenced.add(item.hint)
        if item.jmptab is not None:
            symbol, count = item.jmptab
            relocs.append(
                Relocation(RelocType.JMPTAB, SectionKind.TEXT, offset, symbol, count)
            )
            referenced.add(symbol)
        if item.gprel is not None:
            kind, symbol, addend, group = item.gprel
            rtype = {
                "gprel16": RelocType.GPREL16,
                "gprelhigh": RelocType.GPRELHIGH,
                "gprellow": RelocType.GPRELLOW,
            }[kind]
            relocs.append(
                Relocation(rtype, SectionKind.TEXT, offset, symbol, addend, group)
            )
            referenced.add(symbol)
        instrs.append(instr)

    text = Section(SectionKind.TEXT, alignment=16)
    text.data = bytearray(encode_stream(instrs))
    obj.sections[SectionKind.TEXT] = text

    for kind, section in module.data_sections.items():
        copied = Section(kind, alignment=section.alignment)
        if kind.has_bytes:
            copied.data = bytearray(section.data)
        else:
            copied.bss_size = section.bss_size
        obj.sections[kind] = copied

    for ref in module.data_refs:
        addend = ref.addend
        symbol = ref.symbol
        if ref.label is not None:
            start, __ = proc_bounds[ref.proc]
            addend = label_offset[ref.label] - start
            symbol = ref.proc
        relocs.append(
            Relocation(RelocType.REFQUAD, ref.section, ref.offset, symbol, addend)
        )
        referenced.add(symbol)

    symbols: list[Symbol] = []
    for proc in module.procs:
        start, size = proc_bounds[proc.name]
        symbols.append(
            Symbol(
                proc.name,
                SymbolKind.PROC,
                Binding.GLOBAL if proc.exported else Binding.LOCAL,
                SectionKind.TEXT,
                start,
                size,
                proc=ProcInfo(uses_gp=proc.uses_gp, frame_size=proc.frame_size),
            )
        )
        for label in sorted(proc.export_labels):
            symbols.append(
                Symbol(
                    label,
                    SymbolKind.OBJECT,
                    Binding.GLOBAL,
                    SectionKind.TEXT,
                    label_offset[label],
                )
            )
    # Data/common symbols are copied; undefined symbols are regenerated
    # from what the transformed code still references.
    symbols.extend(
        sym for sym in module.other_symbols if sym.kind is not SymbolKind.UNDEF
    )
    known = {s.name for s in symbols}
    for name in sorted(referenced - known):
        symbols.append(Symbol(name, SymbolKind.UNDEF))

    # The transformer allocates gprel high/low group ids from item uids,
    # which are process-unique but not stable across runs.  Renumber them
    # densely in first-appearance (text-offset) order so the emitted
    # object is a pure function of the module's symbolic content.  Only
    # GPRELHIGH/GPRELLOW use ``extra`` as a pairing group; other types
    # use it for offsets and must not be touched.
    group_ids: dict[int, int] = {}
    for reloc in relocs:
        if reloc.type in (RelocType.GPRELHIGH, RelocType.GPRELLOW):
            if reloc.extra not in group_ids:
                group_ids[reloc.extra] = len(group_ids) + 1
            reloc.extra = group_ids[reloc.extra]

    obj.symbols = symbols
    obj.relocations = relocs
    obj.validate()
    return obj, uid_offset


def _nop_instruction():
    from repro.isa.instruction import Instruction

    return Instruction.nop()
