"""ATOM-style link-time instrumentation built on OM's symbolic form.

OM's companion system ATOM ("A System for Building Customized Program
Analysis Tools", cited in the paper) built program-analysis tools by
splicing instrumentation into fully linked programs.  This module
provides the canonical first tool: procedure-entry counters covering
*every* procedure in the closed world, pre-compiled library code
included.

The inserted sequence runs at procedure entry, where the scratch
registers AT and T11 are dead by convention and GP still holds the
caller's value (valid whenever the program links into a single GAT
group, which ``link_with_entry_counters`` asserts)::

    ldq   at, <counters+8*i>(gp)   ; address of this procedure's slot
    ldq   t11, 0(at)
    addq  t11, 1, t11
    stq   t11, 0(at)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.isa.registers import Reg
from repro.linker.executable import Executable
from repro.linker.layout import LayoutOptions, compute_layout
from repro.linker.relocate import build_executable
from repro.linker.resolve import resolve_inputs
from repro.machine.cpu import Machine
from repro.minicc.mcode import MInstr, MLabel
from repro.objfile.archive import Archive
from repro.objfile.objfile import ObjectFile
from repro.objfile.relocations import LituseKind
from repro.objfile.sections import Section, SectionKind
from repro.objfile.symbols import Binding, Symbol, SymbolKind
from repro.om.symbolic import SymbolicModule, reassemble_module, translate_module

COUNTER_SYMBOL = "__proc_counts"


@dataclass
class InstrumentedProgram:
    """An executable with entry counters and the slot assignment."""

    executable: Executable
    proc_index: dict[str, int] = field(default_factory=dict)

    def run_with_counts(self, *, timed: bool = False, max_instructions: int = 200_000_000):
        """Run the program; returns (RunResult, {proc: entry count})."""
        machine = Machine(self.executable, max_instructions=max_instructions)
        result = machine.run(timed=timed)
        base = self.executable.symbol(COUNTER_SYMBOL)
        counts = {
            name: machine._load_q(base + 8 * index)
            for name, index in self.proc_index.items()
        }
        return result, counts


def add_entry_counters(modules: list[SymbolicModule]) -> dict[str, int]:
    """Splice an entry-counter bump into every procedure (in place).

    Returns the procedure -> counter-slot assignment.  The counters
    array is appended to the first module's ``.data`` under
    :data:`COUNTER_SYMBOL`.
    """
    proc_index: dict[str, int] = {}
    for module in modules:
        for symbol in module.other_symbols:
            if symbol.name == COUNTER_SYMBOL:
                raise ValueError(
                    f"symbol {COUNTER_SYMBOL!r} already defined in "
                    f"{module.name!r}; the program cannot be instrumented "
                    "twice (or reserve that name)"
                )
        for proc in module.procs:
            if proc.name == COUNTER_SYMBOL:
                raise ValueError(
                    f"procedure name collides with the counter-section "
                    f"symbol {COUNTER_SYMBOL!r}"
                )
            if proc.name != "__start":  # GP is not yet live at the true entry
                proc_index.setdefault(proc.name, len(proc_index))

    home = modules[0]
    data = home.data_sections.setdefault(SectionKind.DATA, Section(SectionKind.DATA))
    data.align_to(8)
    base = data.size
    data.append(bytes(8 * max(len(proc_index), 1)))
    home.other_symbols.append(
        Symbol(
            COUNTER_SYMBOL, SymbolKind.OBJECT, Binding.GLOBAL,
            SectionKind.DATA, base, 8 * max(len(proc_index), 1),
        )
    )

    for module in modules:
        for proc in module.procs:
            index = proc_index.get(proc.name)
            if index is None:
                continue
            load = MInstr(
                Instruction.mem("ldq", Reg.AT, Reg.GP, 0),
                literal=(COUNTER_SYMBOL, 8 * index),
            )
            bump = [
                load,
                MInstr(
                    Instruction.mem("ldq", Reg.T11, Reg.AT, 0),
                    lituse=(load.uid, LituseKind.BASE),
                ),
                MInstr(Instruction.opr("addq", Reg.T11, 1, Reg.T11, lit=True)),
                MInstr(
                    Instruction.mem("stq", Reg.T11, Reg.AT, 0),
                    lituse=(load.uid, LituseKind.BASE),
                ),
            ]
            entry = next(
                i
                for i, item in enumerate(proc.items)
                if isinstance(item, MLabel) and item.name == proc.name
            )
            proc.items[entry + 1 : entry + 1] = bump
    return proc_index


def link_with_entry_counters(
    objects: list[ObjectFile],
    libraries: list[Archive] = (),
    *,
    entry: str = "__start",
    gat_capacity: int | None = None,
) -> InstrumentedProgram:
    """Resolve, instrument every procedure, and produce an executable.

    ``gat_capacity`` overrides the layout's GAT-group capacity (tests
    use a tiny capacity to exercise the multi-group rejection below).
    """
    inputs = resolve_inputs(objects, list(libraries))
    modules = [translate_module(obj) for obj in inputs.modules]
    proc_index = add_entry_counters(modules)

    final = [reassemble_module(module)[0] for module in modules]
    final_inputs = resolve_inputs(final, [])
    layout_options = (
        LayoutOptions()
        if gat_capacity is None
        else LayoutOptions(gat_capacity=gat_capacity)
    )
    layout = compute_layout(final_inputs, layout_options)
    if len(layout.groups) > 1:
        raise ValueError(
            "entry-counter instrumentation requires a single GAT group "
            "(GP must be caller-valid at every entry)"
        )
    executable = build_executable(final_inputs, layout, entry=entry)
    return InstrumentedProgram(executable, proc_index)
