"""The OM optimizing-linker driver.

``om_link`` mirrors the standard linker's interface but routes every
module through symbolic translation, the requested optimization level,
optional rescheduling, and reassembly; the finish is a normal layout +
relocation pass over the transformed modules.  GAT reduction is
emergent: the final GAT is built from the literal relocations that
survive, and the transformation rounds iterate because a smaller GAT
brings data closer to GP, "perhaps enabling a fresh round of the other
improvements".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.linker.executable import Executable
from repro.linker.layout import DEFAULT_GAT_CAPACITY, LayoutOptions, compute_layout
from repro.linker.relocate import build_executable
from repro.linker.resolve import resolve_inputs
from repro.obs.trace import TraceLog, span_or_null
from repro.objfile.archive import Archive
from repro.objfile.objfile import ObjectFile
from repro.om.sched import om_schedule
from repro.om.stats import OMStats, count_code
from repro.om.symbolic import reassemble_module, translate_module
from repro.om.transform import PassCounters, Program, Transformer
from repro.om.verify import VerifyReport


class OMLevel(enum.Enum):
    """Optimization level, as in the paper's study."""

    NONE = "none"  # translate and regenerate only (overhead baseline)
    SIMPLE = "simple"  # no code motion; 1-for-1 replacement with no-ops
    FULL = "full"  # motion, deletion, GAT-reduction rounds


@dataclass
class OMOptions:
    """Knobs, including the ablations DESIGN.md calls out."""

    schedule: bool = False  # link-time rescheduling (OM-full only)
    align_loop_targets: bool = True  # quadword-align backward-branch targets
    rounds: int = 3  # GAT-reduction iteration bound
    sort_commons: bool = True  # place size-sorted COMMONs near the GAT
    convert_escaped: bool = False  # 2-for-1 ldah+lda for far escaped literals
    remove_dead_procs: bool = False  # extension: link-time procedure GC
    verify: bool = False  # run the structural verifier on the output
    gat_capacity: int = DEFAULT_GAT_CAPACITY
    entry: str = "__start"
    # -- layout subsystem (repro.layout): the closed PGO loop ---------
    layout: bool = False  # Pettis-Hansen reordering + hot COMMONs (FULL)
    relax: bool = False  # optimistic jsr->bsr span-dependent relaxation
    relax_slack: int = 0  # extra modelled-growth headroom, bytes
    relax_max_iterations: int = 64  # fixpoint ceiling (backstop)
    bsr_range_words: int = 1 << 20  # 21-bit word displacement reach
    # -- partitioned whole-program optimization (repro.wpo) -----------
    partitions: int = 0  # >1: shard the transform rounds (byte-identical)
    wpo_jobs: int = 0  # 0/1 = run shards inline; >1 = own process pool


@dataclass
class OMResult:
    executable: Executable
    stats: OMStats
    counters: PassCounters = field(default_factory=PassCounters)
    #: Structural-verification counters when ``OMOptions.verify`` ran.
    verify: VerifyReport | None = None
    #: The link's trace/provenance log when one was attached.
    trace: TraceLog | None = None
    #: :class:`repro.wpo.WPOStats` when ``OMOptions.partitions`` > 1.
    wpo: object | None = None


def om_link(
    objects: list[ObjectFile],
    libraries: list[Archive] = (),
    *,
    level: OMLevel = OMLevel.FULL,
    options: OMOptions | None = None,
    trace: TraceLog | None = None,
    profile=None,
    cache=None,
) -> OMResult:
    """Optimizing link: the paper's OM-simple / OM-full, or the
    translate-only OM-none baseline.

    With a ``trace`` attached, every phase records a span and every
    transformation decision records a provenance event (see
    :mod:`repro.obs.provenance`).

    With ``options.layout`` set, a :class:`~repro.machine.profile.
    ProfileResult` of a previous run of the same program (``profile``)
    closes the PGO loop: procedures are reordered along the profiled
    call graph and COMMON placement is steered by symbol heat.  Without
    a profile the layout planner falls back to static estimates.

    With ``options.partitions`` > 1 the transformation rounds run
    partitioned (:mod:`repro.wpo`): balanced shards in parallel around
    a serial whole-program phase, producing a byte-identical
    executable.  ``cache`` (an :class:`repro.cache.ArtifactCache`)
    then content-addresses each shard's transform, so relinking after
    a one-module edit only recomputes the changed shard.
    """
    options = options or OMOptions()
    inputs = resolve_inputs(objects, list(libraries))

    # Baseline measurements use the standard linker's view.
    baseline_layout = compute_layout(inputs, LayoutOptions())
    gat_before = sum(group.size for group in baseline_layout.groups)
    text_before = baseline_layout.text_end - baseline_layout.options.text_base

    with span_or_null(trace, "om.translate", cat="om", modules=len(inputs.modules)):
        modules = [translate_module(module) for module in inputs.modules]
    before = count_code(modules)

    # Profile-guided layout: reorder procedures and weigh symbols
    # before the transformation rounds, so every round's tentative
    # layout (and the relaxation fixpoint) sees the final placement.
    plan = None
    if level is OMLevel.FULL and options.layout:
        from repro.layout.plan import apply_plan, plan_layout

        with span_or_null(
            trace, "om.layout", cat="om", profiled=profile is not None
        ):
            plan = plan_layout(
                modules, profile=profile, entry=options.entry, trace=trace
            )
            modules = apply_plan(modules, plan, trace=trace)

    relax_options = None
    if options.relax and level is not OMLevel.NONE:
        from repro.layout.relax import RelaxOptions

        # Rescheduling (alignment padding) and the escaped 2-for-1
        # ablation can grow code after the decisions; reserve headroom.
        slack = options.relax_slack + (
            32768 if (options.schedule or options.convert_escaped) else 0
        )
        relax_options = RelaxOptions(
            range_words=options.bsr_range_words,
            slack=slack,
            max_iterations=options.relax_max_iterations,
        )

    counters = PassCounters()
    relax_iterations = relax_demoted = 0
    wpo_stats = None
    if level is not OMLevel.NONE:
        layout_options = LayoutOptions(
            gat_capacity=options.gat_capacity,
            sort_commons=options.sort_commons,
            symbol_weights=(plan.symbol_weights or None) if plan else None,
        )
        max_rounds = 1 if level is OMLevel.SIMPLE else max(1, options.rounds)
        if options.partitions > 1:
            from repro.wpo import wpo_rounds

            with span_or_null(
                trace, "om.wpo", cat="om", partitions=options.partitions
            ):
                wpo = wpo_rounds(
                    modules,
                    level=level,
                    options=options,
                    relax_options=relax_options,
                    layout_options=layout_options,
                    max_rounds=max_rounds,
                    cache=cache,
                    trace=trace,
                )
            counters.merge(wpo.counters)
            relax_iterations += wpo.relax_iterations
            relax_demoted += wpo.relax_demoted
            wpo_stats = wpo.stats
        else:
            for round_index in range(max_rounds):
                with span_or_null(
                    trace, f"om.round{round_index}", cat="om", level=level.value
                ):
                    objs = [reassemble_module(module)[0] for module in modules]
                    round_inputs = resolve_inputs(objs, [])
                    layout = compute_layout(round_inputs, layout_options)
                    program = Program.build(modules, layout, entry=options.entry)
                    transformer = Transformer(
                        program,
                        full=level is OMLevel.FULL,
                        convert_escaped=options.convert_escaped,
                        trace=trace,
                        round_index=round_index,
                        relax=relax_options,
                        bsr_range_words=options.bsr_range_words,
                    )
                    counters.merge(transformer.run())
                    if transformer.relax_result is not None:
                        relax_iterations += transformer.relax_result.iterations
                        relax_demoted += transformer.relax_result.demoted
                if not transformer.changed:
                    break

    if level is OMLevel.FULL and options.remove_dead_procs:
        from repro.om.gc import remove_dead_procedures

        with span_or_null(trace, "om.gc", cat="om"):
            counters.procs_removed += remove_dead_procedures(
                modules, options.entry, trace=trace
            )

    if level is OMLevel.FULL and options.schedule:
        with span_or_null(trace, "om.sched", cat="om"):
            om_schedule(
                modules,
                align_loop_targets=options.align_loop_targets,
                trace=trace,
            )

    with span_or_null(trace, "om.finalize", cat="om"):
        final_objs = [reassemble_module(module)[0] for module in modules]
        final_inputs = resolve_inputs(final_objs, [])
        final_layout_options = (
            LayoutOptions()
            if level is OMLevel.NONE
            else LayoutOptions(
                gat_capacity=options.gat_capacity,
                sort_commons=options.sort_commons,
                symbol_weights=(plan.symbol_weights or None) if plan else None,
            )
        )
        final_layout = compute_layout(final_inputs, final_layout_options)
        executable = build_executable(final_inputs, final_layout, entry=options.entry)

    report: VerifyReport | None = None
    if options.verify:
        from repro.om.verify import verify_executable

        with span_or_null(trace, "om.verify", cat="om"):
            report = verify_executable(executable)
        if trace is not None:
            trace.event(
                "om.verify.report",
                cat="om",
                instructions=report.instructions,
                branches=report.branches,
                calls=report.calls,
                gat_entries=report.gat_entries,
                problems=len(report.problems),
            )

    stats = OMStats(
        level=level.value,
        before=before,
        after=count_code(modules),
        loads_converted=counters.loads_converted,
        loads_nullified=counters.loads_nullified + counters.pv_loads_removed,
        gat_bytes_before=gat_before,
        gat_bytes_after=sum(group.size for group in final_layout.groups),
        text_bytes_before=text_before,
        text_bytes_after=executable.text_size,
        procs_moved=plan.moved if plan else 0,
        relax_iterations=relax_iterations,
        relax_demoted=relax_demoted,
    )
    return OMResult(
        executable, stats, counters, verify=report, trace=trace, wpo=wpo_stats
    )
