"""Post-link structural verification of executables.

A defensive checker run over OM's output (and usable on the standard
linker's too): it re-decodes the final image and asserts the structural
invariants that the transformations must preserve.  Cheap enough to run
in tests after every optimized link; OM itself can run it via
``OMOptions.verify``.

Checks:

* every text word decodes to a known instruction;
* every branch displacement lands on an instruction inside the text
  segment, and conditional branches stay within their procedure;
* every ``jsr``/``jmp``/``ret`` base register is architecturally
  plausible (jumps never through GP/SP/ZERO);
* the procedure table tiles the text segment without overlap;
* the GAT region holds only addresses inside the image's segments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.encoding import EncodingError, decode
from repro.isa.registers import Reg
from repro.linker.executable import Executable


class VerificationError(Exception):
    """The executable violates a structural invariant."""


@dataclass
class VerifyReport:
    instructions: int = 0
    branches: int = 0
    calls: int = 0
    gat_entries: int = 0
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


_BAD_JUMP_BASES = {int(Reg.GP), int(Reg.SP), int(Reg.ZERO)}


def verify_executable(executable: Executable, *, strict: bool = True) -> VerifyReport:
    """Check structural invariants; raises on failure when ``strict``."""
    report = VerifyReport()
    text = executable.text_bytes()
    base = executable.segments[0].vaddr
    nwords = len(text) // 4

    proc_spans = sorted((p.addr, p.addr + p.size, p.name) for p in executable.procs)
    for (a_start, a_end, a_name), (b_start, __, b_name) in zip(
        proc_spans, proc_spans[1:]
    ):
        if a_end > b_start:
            report.problems.append(
                f"procedures {a_name} and {b_name} overlap"
            )

    def proc_of(addr: int) -> str | None:
        for start, end, name in proc_spans:
            if start <= addr < end:
                return name
        return None

    for index in range(nwords):
        word = int.from_bytes(text[4 * index : 4 * index + 4], "little")
        pc = base + 4 * index
        try:
            instr = decode(word)
        except EncodingError as exc:
            report.problems.append(f"{pc:#x}: undecodable word ({exc})")
            continue
        report.instructions += 1

        if instr.is_branch:
            report.branches += 1
            target = pc + 4 + 4 * instr.disp
            if not base <= target < base + len(text):
                report.problems.append(
                    f"{pc:#x}: branch target {target:#x} outside text"
                )
            elif instr.is_cond_branch and proc_of(target) != proc_of(pc):
                report.problems.append(
                    f"{pc:#x}: conditional branch crosses procedures"
                )
        if instr.is_call:
            report.calls += 1
        if instr.is_jump and instr.rb in _BAD_JUMP_BASES:
            report.problems.append(
                f"{pc:#x}: jump through register {Reg(instr.rb).name}"
            )

    # GAT contents must be addresses inside some segment (or zero).
    data = executable.segments[1]
    lo_bounds = [(s.vaddr, s.end) for s in executable.segments]
    lo_bounds += [(addr, addr + size) for addr, size in executable.zeroed]
    gat_offset = executable.gat_base - data.vaddr
    for slot in range(executable.gat_size // 8):
        value = int.from_bytes(
            data.data[gat_offset + 8 * slot : gat_offset + 8 * slot + 8], "little"
        )
        report.gat_entries += 1
        if value and not any(lo <= value < hi for lo, hi in lo_bounds):
            report.problems.append(
                f"GAT slot {slot}: value {value:#x} outside all segments"
            )

    if strict and report.problems:
        raise VerificationError("; ".join(report.problems[:10]))
    return report
