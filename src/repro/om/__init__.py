"""OM: the link-time code modification and optimization system.

This is the paper's primary contribution.  OM links a program like the
standard linker but first translates every module's object code into a
*symbolic form* — instructions with symbolic operands, recovered
procedure boundaries, control flow, and jump tables — transforms that
form, and generates the final executable from it.  Translation to and
from symbolic form is "the key idea behind OM": deletion and reordering
of instructions require no manual tracking of address constants or
branch displacements.

Two optimization levels are provided, as in the paper:

* :data:`OMLevel.SIMPLE` — local analysis, no code motion, 1-for-1
  instruction replacement (unneeded instructions become no-ops);
* :data:`OMLevel.FULL` — code motion and deletion: GP-setup pairs are
  restored to their logical positions, BSRs are retargeted past callee
  GP setup, PV-loads and GP-resets are deleted, and GAT reduction is
  iterated; optionally followed by link-time rescheduling with
  quadword alignment of backward-branch targets.
"""

from repro.om.driver import OMLevel, OMOptions, OMResult, om_link
from repro.om.stats import OMStats

__all__ = ["OMLevel", "OMOptions", "OMResult", "OMStats", "om_link"]
