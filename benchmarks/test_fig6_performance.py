"""Figure 6: dynamic improvement relative to the program without
link-time optimization.

Paper: OM-simple improves compile-each programs by 1.5% on average
(median 0.6%), OM-full by 3.8% (median 2.8%); on compile-all versions
1.35% and 3.4% — about 90% of the compile-each improvement.
Rescheduling adds only a little (3.8% -> 4.2%).
"""

import statistics

from repro.experiments import fig6_rows
from repro.experiments.report import print_figure


def test_fig6_dynamic_improvement(benchmark, bench_programs, bench_scale):
    keys, rows = benchmark.pedantic(
        fig6_rows,
        kwargs={"programs": bench_programs, "scale": bench_scale},
        rounds=1,
        iterations=1,
    )
    print()
    print_figure("fig6", keys, rows, percent=False)

    mean = rows[-1]
    body = rows[:-1]
    # OM-simple helps, OM-full helps more, on both versions.
    assert mean["each_simple"] > 0.3
    assert mean["each_full"] > mean["each_simple"]
    assert mean["all_full"] > mean["all_simple"] > 0.2
    # Compile-all retains most of the compile-each benefit (paper: 90%).
    assert mean["all_full"] >= 0.6 * mean["each_full"]
    # Medians land in a plausible band around the paper's 2.8%.
    median_full = statistics.median(row["each_full"] for row in body)
    assert median_full > 0.5
    # Rescheduling changes things only modestly on average.
    if "each_full-sched" in mean:
        assert mean["each_full-sched"] >= mean["each_full"] - 1.0
