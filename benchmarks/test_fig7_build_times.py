"""Figure 7: build-time comparison.

Paper: a standard link takes fractions of a second; OM adds modest
overhead (even OM-full handles any benchmark in a couple of seconds);
rebuilding from source with interprocedural optimization is one to two
orders of magnitude slower; link-time scheduling is the expensive OM
step.
"""

from repro.benchsuite import build_stdlib
from repro.experiments import fig7_rows
from repro.experiments.build import build_objects
from repro.experiments.report import print_figure
from repro.linker import link
from repro.om import OMLevel, OMOptions, om_link

#: A representative subset for the per-operation timing benchmarks.
REPRESENTATIVE = "li"


def test_fig7_build_time_table(benchmark, bench_programs, bench_scale):
    keys, rows = benchmark.pedantic(
        fig7_rows,
        kwargs={"programs": bench_programs, "scale": bench_scale},
        rounds=1,
        iterations=1,
    )
    print()
    print_figure("fig7", keys, rows, percent=False)

    mean = rows[-1]
    # Orderings the paper reports.
    assert mean["ld"] <= mean["om_none"] <= mean["om_full"] * 1.05
    assert mean["om_simple"] <= mean["om_full"] * 1.2
    assert mean["interproc_build"] > mean["ld"]
    assert mean["om_sched"] >= mean["om_full"]


def test_bench_standard_link(benchmark, bench_scale):
    objects, lib = build_objects(REPRESENTATIVE, "each", bench_scale)
    benchmark(lambda: link(objects, [lib]))


def test_bench_om_simple(benchmark, bench_scale):
    objects, lib = build_objects(REPRESENTATIVE, "each", bench_scale)
    benchmark(lambda: om_link(objects, [lib], level=OMLevel.SIMPLE))


def test_bench_om_full(benchmark, bench_scale):
    objects, lib = build_objects(REPRESENTATIVE, "each", bench_scale)
    benchmark(lambda: om_link(objects, [lib], level=OMLevel.FULL))


def test_bench_om_full_sched(benchmark, bench_scale):
    objects, lib = build_objects(REPRESENTATIVE, "each", bench_scale)
    benchmark(
        lambda: om_link(
            objects, [lib], level=OMLevel.FULL, options=OMOptions(schedule=True)
        )
    )
