"""Figure 3: static fraction of address loads removed.

Paper: OM-simple converts essentially all convertible loads and
nullifies about as many — about half of all address loads removed;
OM-full eliminates nearly all of them.
"""

from repro.experiments import fig3_rows
from repro.experiments.report import print_figure


def test_fig3_address_loads(benchmark, bench_programs, bench_scale):
    keys, rows = benchmark.pedantic(
        fig3_rows,
        kwargs={"programs": bench_programs, "scale": bench_scale},
        rounds=1,
        iterations=1,
    )
    print()
    print_figure("fig3", keys, rows, percent=True)

    mean = rows[-1]
    # OM-simple removes a substantial fraction (paper: ~half).
    simple_removed = mean["each_simple_conv"] + mean["each_simple_null"]
    assert 0.25 <= simple_removed <= 0.9
    # OM-full eliminates nearly all address loads.
    full_removed = mean["each_full_conv"] + mean["each_full_null"]
    assert full_removed >= 0.8
    assert full_removed >= simple_removed
    # Compile-all behaves comparably (paper: OM's ability is not
    # dependent on prior interprocedural optimization).
    all_full = mean["all_full_conv"] + mean["all_full_null"]
    assert abs(all_full - full_removed) < 0.2
