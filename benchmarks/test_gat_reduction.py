"""§5.1's GAT statistic: OM-full reduces the GAT by an order of
magnitude, to 3-15% of its original size."""

from repro.experiments import gat_rows
from repro.experiments.report import print_figure


def test_gat_reduction(benchmark, bench_programs, bench_scale):
    keys, rows = benchmark.pedantic(
        gat_rows,
        kwargs={"programs": bench_programs, "scale": bench_scale},
        rounds=1,
        iterations=1,
    )
    print()
    print_figure("gat", keys, rows, percent=False)

    mean = rows[-1]
    # Order-of-magnitude shrink on average (paper band: 3-15%).
    assert mean["ratio"] <= 0.25
    for row in rows[:-1]:
        assert row["gat_after"] <= row["gat_before"]
