"""Figure 5: static fraction of instructions nullified/deleted.

Paper: OM-simple nullifies ~6% of instructions; OM-full deletes ~11%
("an astonishing eleven percent... and often more"); compile-all code
improves nearly as much as compile-each.
"""

from repro.experiments import fig5_rows
from repro.experiments.report import print_figure


def test_fig5_instructions_removed(benchmark, bench_programs, bench_scale):
    keys, rows = benchmark.pedantic(
        fig5_rows,
        kwargs={"programs": bench_programs, "scale": bench_scale},
        rounds=1,
        iterations=1,
    )
    print()
    print_figure("fig5", keys, rows, percent=True)

    mean = rows[-1]
    assert 0.02 <= mean["each_simple"] <= 0.20
    assert mean["each_full"] >= 0.08  # paper: ~11%, often more
    assert mean["each_full"] > mean["each_simple"]
    # Compile-all improvement is nearly equal to compile-each.
    assert mean["all_full"] >= 0.5 * mean["each_full"]
