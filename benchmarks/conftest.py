"""Benchmark configuration.

Environment knobs:

* ``REPRO_BENCH_PROGRAMS`` — comma-separated subset (default: all 19);
* ``REPRO_BENCH_SCALE`` — workload SCALE override (default: the
  programs' built-in sizes, as the figures are meant to be run).

Each figure benchmark regenerates its table once (pedantic, one round)
and prints it, so ``pytest benchmarks/ --benchmark-only -s`` reproduces
the paper's evaluation section.
"""

from __future__ import annotations

import os

import pytest

from repro.benchsuite import PROGRAMS


@pytest.fixture(scope="session")
def bench_programs() -> list[str]:
    names = os.environ.get("REPRO_BENCH_PROGRAMS")
    return names.split(",") if names else list(PROGRAMS)


@pytest.fixture(scope="session")
def bench_scale() -> int | None:
    scale = os.environ.get("REPRO_BENCH_SCALE")
    return int(scale) if scale else None
