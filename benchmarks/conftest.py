"""Benchmark configuration.

Environment knobs:

* ``REPRO_BENCH_PROGRAMS`` — comma-separated subset (default: all 19);
* ``REPRO_BENCH_SCALE`` — workload SCALE override (default: the
  programs' built-in sizes, as the figures are meant to be run);
* ``REPRO_BENCH_JOBS`` — worker processes for the build/link/run
  pipeline (default: 1, fully in-process);
* ``REPRO_CACHE_DIR`` — content-addressed artifact cache directory;
  when set, builds/links/runs persist across benchmark sessions and a
  warm session performs zero compiles.

Each figure benchmark regenerates its table once (pedantic, one round)
and prints it, so ``pytest benchmarks/ --benchmark-only -s`` reproduces
the paper's evaluation section.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.benchsuite import PROGRAMS


@pytest.fixture(scope="session")
def bench_programs() -> list[str]:
    names = os.environ.get("REPRO_BENCH_PROGRAMS")
    return names.split(",") if names else list(PROGRAMS)


@pytest.fixture(scope="session")
def bench_scale() -> int | None:
    scale = os.environ.get("REPRO_BENCH_SCALE")
    return int(scale) if scale else None


@pytest.fixture(scope="session")
def bench_jobs() -> int:
    jobs = os.environ.get("REPRO_BENCH_JOBS")
    return int(jobs) if jobs else 1


@pytest.fixture(scope="session", autouse=True)
def bench_cache(bench_programs, bench_scale, bench_jobs):
    """Install the artifact cache and prewarm the matrix in parallel.

    Without ``REPRO_CACHE_DIR`` this is a no-op and every figure builds
    in-process exactly as before.
    """
    from repro.experiments.build import configure_cache

    cache_dir = os.environ.get("REPRO_CACHE_DIR")
    if not cache_dir:
        yield None
        return

    from repro.cache import ArtifactCache
    from repro.experiments.pipeline import prewarm

    cache = ArtifactCache(Path(cache_dir))
    previous = configure_cache(cache)
    metrics = prewarm(
        ["all"], programs=bench_programs, scale=bench_scale, jobs=bench_jobs
    )
    print()
    print(metrics.format())
    yield cache
    configure_cache(previous)
