"""Figure 4: static fraction of calls requiring PV-loads and GP-resets.

Paper: even compile-all leaves ~85% of calls fully bookkept; OM-simple
converts JSRs to BSRs but cannot nullify most PV-loads (compile-time
scheduling moved the GP-setup it would skip); OM-full removes all but
the calls through procedure variables.
"""

from repro.experiments import fig4_rows
from repro.experiments.report import print_figure


def test_fig4_call_overhead(benchmark, bench_programs, bench_scale):
    keys, rows = benchmark.pedantic(
        fig4_rows,
        kwargs={"programs": bench_programs, "scale": bench_scale},
        rounds=1,
        iterations=1,
    )
    print()
    print_figure("fig4", keys, rows, percent=True)

    mean = rows[-1]
    # Without OM, nearly all calls carry the full bookkeeping.
    assert mean["each_none_pv"] >= 0.85
    assert mean["each_none_reset"] >= 0.85
    assert mean["all_none_pv"] >= 0.80  # interproc helps only a little
    # OM-simple: most PV loads stay, most GP-resets go.
    assert mean["each_simple_pv"] >= 0.5
    assert mean["each_simple_reset"] <= 0.2
    # OM-full: only procedure-variable calls remain.
    assert mean["each_full_pv"] <= 0.15
    assert mean["each_full_reset"] <= 0.05
