"""Ablations of the design choices the paper calls out.

* small-data sorting (the COMMON sort near the GAT);
* BSR retargeting past callee GP setup;
* loop-target quadword alignment (the paper's ``ear`` regression);
* GAT-reduction iteration (the "fresh round" effect);
* the escaped-literal 2-for-1 conversion OM leaves on the table.
"""

import pytest

from repro.benchsuite import build_program, build_stdlib
from repro.linker import link, make_crt0
from repro.machine import run
from repro.om import OMLevel, OMOptions, om_link

SUBSET = ["eqntott", "li", "hydro2d"]


@pytest.fixture(scope="module")
def env():
    return make_crt0(), build_stdlib()


def build(env, name, scale):
    crt0, lib = env
    return [crt0] + build_program(name, "each", scale=scale), lib


def test_ablation_sort_commons(benchmark, env, bench_scale):
    """Without small-data sorting, fewer loads can be nullified."""

    def measure():
        gains = []
        for name in SUBSET:
            objs, lib = build(env, name, bench_scale)
            on = om_link(objs, [lib], level=OMLevel.SIMPLE)
            off = om_link(
                objs, [lib], level=OMLevel.SIMPLE,
                options=OMOptions(sort_commons=False),
            )
            gains.append((name, on.stats.loads_nullified, off.stats.loads_nullified))
        return gains

    gains = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    for name, with_sort, without in gains:
        print(f"  {name:10s} nullified with sort={with_sort}, without={without}")
    assert all(with_sort >= without for __, with_sort, without in gains)
    assert any(with_sort > without for __, with_sort, without in gains)


def test_ablation_gat_rounds(benchmark, env, bench_scale):
    """A single round forgoes nullifications the shrunken GAT enables."""

    def measure():
        out = []
        for name in SUBSET:
            objs, lib = build(env, name, bench_scale)
            multi = om_link(objs, [lib], level=OMLevel.FULL)
            single = om_link(
                objs, [lib], level=OMLevel.FULL, options=OMOptions(rounds=1)
            )
            out.append(
                (name, multi.counters.loads_nullified, single.counters.loads_nullified)
            )
        return out

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    for name, multi, single in rows:
        print(f"  {name:10s} nullified multi-round={multi}, single-round={single}")
    assert all(multi >= single for __, multi, single in rows)


def test_ablation_alignment(benchmark, env, bench_scale):
    """Quadword alignment of backward-branch targets can help or hurt
    (the paper saw ear regress); both must preserve behaviour."""

    def measure():
        out = []
        for name in SUBSET + ["ear"]:
            objs, lib = build(env, name, bench_scale)
            base = run(link(objs, [lib]))
            aligned = run(
                om_link(
                    objs, [lib], level=OMLevel.FULL, options=OMOptions(schedule=True)
                ).executable
            )
            unaligned = run(
                om_link(
                    objs,
                    [lib],
                    level=OMLevel.FULL,
                    options=OMOptions(schedule=True, align_loop_targets=False),
                ).executable
            )
            assert aligned.output == unaligned.output == base.output
            out.append((name, aligned.cycles, unaligned.cycles))
        return out

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    for name, aligned, unaligned in rows:
        delta = 100.0 * (unaligned - aligned) / unaligned
        print(f"  {name:10s} aligned={aligned} unaligned={unaligned} ({delta:+.2f}%)")


def test_ablation_convert_escaped(benchmark, env, bench_scale):
    """The 2-for-1 escaped-literal conversion empties the GAT further
    but trades one load for two dependent instructions."""

    def measure():
        out = []
        for name in SUBSET:
            objs, lib = build(env, name, bench_scale)
            default = om_link(objs, [lib], level=OMLevel.FULL)
            aggressive = om_link(
                objs, [lib], level=OMLevel.FULL,
                options=OMOptions(convert_escaped=True),
            )
            assert (
                run(aggressive.executable, timed=False).output
                == run(default.executable, timed=False).output
            )
            out.append(
                (name, default.stats.gat_bytes_after, aggressive.stats.gat_bytes_after)
            )
        return out

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    for name, default, aggressive in rows:
        print(f"  {name:10s} GAT default={default}B aggressive={aggressive}B")
    assert all(aggressive <= default for __, default, aggressive in rows)
