"""Differential oracle for the JIT machine backend.

The interpreter loops in :mod:`repro.machine.cpu` are ground truth;
the translating backend must reproduce them bit-for-bit on every
observable.  Three layers of evidence:

* a hypothesis property over generated MiniC programs (output bytes,
  instruction counts, timed cycles — functional and timed paths);
* a seeded regression across every benchsuite program (functional
  identity for all, full timed-model identity for a pinned subset);
* execution-budget fidelity: a bounded run must trip (or complete)
  at exactly the same point as the interpreter, leaving identical
  memory behind — mid-block checkpointing may not drift.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.benchsuite.suite import PROGRAMS
from repro.experiments import build
from repro.fuzz.generate import RichProgramGen
from repro.linker import link
from repro.machine import ExecutionBudgetExceeded, Machine, machine_for
from repro.machine.jit import JitMachine, clear_jit_cache
from repro.minicc import compile_module

#: Timed runs cost ~2x functional; pin the full timing model on a
#: subset that covers integer, float-heavy, and call-dense programs.
TIMED_PROGRAMS = ("compress", "li", "hydro2d", "eqntott")

_RUN_FIELDS = (
    "output", "instructions", "cycles", "icache_misses", "dcache_misses",
    "dual_issues", "halted",
)


def _fields(result) -> tuple:
    return tuple(getattr(result, name) for name in _RUN_FIELDS)


def _link_generated(program, crt0, libmc):
    objects = [crt0] + [
        compile_module(text, name.replace(".mc", ".o"))
        for name, text in program.modules
    ]
    return link(objects, [libmc])


@settings(max_examples=12)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_jit_matches_interpreter_on_generated_programs(seed, crt0, libmc):
    exe = _link_generated(RichProgramGen(seed).generate(), crt0, libmc)
    budget = 5_000_000
    interp = Machine(exe, max_instructions=budget)
    jit = JitMachine(exe, max_instructions=budget)
    assert _fields(jit._run_functional()) == _fields(
        interp._run_functional()
    )
    assert _fields(jit._run_timed()) == _fields(interp._run_timed())


@pytest.mark.parametrize("program", PROGRAMS)
def test_jit_matches_interpreter_on_benchsuite(program, crt0, libmc):
    exe = build.link_variant(program, "each", "ld", 1)
    interp = Machine(exe).run(timed=False)
    jit = JitMachine(exe).run(timed=False)
    assert _fields(jit) == _fields(interp)


@pytest.mark.parametrize("program", TIMED_PROGRAMS)
def test_jit_matches_timing_model_on_benchsuite(program):
    exe = build.link_variant(program, "each", "ld", 1)
    interp = Machine(exe).run(timed=True)
    jit = JitMachine(exe).run(timed=True)
    assert _fields(jit) == _fields(interp)


def test_backend_selector_round_trip():
    exe = build.link_variant("eqntott", "each", "ld", 1)
    assert isinstance(machine_for(exe, backend="jit"), JitMachine)
    assert not isinstance(machine_for(exe, backend="interp"), JitMachine)
    assert not isinstance(machine_for(exe), JitMachine)
    with pytest.raises(ValueError):
        machine_for(exe, backend="turbo")


def _bounded_state(machine_cls, exe, budget, timed):
    """(outcome, data bytes) of a run bounded to ``budget`` steps."""
    machine = machine_cls(exe, max_instructions=budget)
    try:
        result = (
            machine._run_timed() if timed else machine._run_functional()
        )
        outcome = ("completed", _fields(result))
    except ExecutionBudgetExceeded as exc:
        outcome = ("tripped", exc.limit)
    return outcome, bytes(machine.data)


@pytest.mark.parametrize("timed", (False, True), ids=("fast", "timed"))
def test_budget_trips_at_identical_instruction(timed, crt0, libmc):
    """Mid-block budget checkpointing: same trip point, same memory.

    The JIT executes whole trees between budget checks on its fast
    path; when a bounded run would overrun inside a block it must
    replay under the guarded flavor so the trip happens at exactly the
    interpreter's instruction index — pinned here by comparing the
    data image both backends leave behind at a sweep of exact budgets.
    """
    source = """
    int acc[32];
    int step(int i) { acc[i % 32] += i; return acc[i % 32]; }
    int main() {
        int i;
        int s = 0;
        for (i = 0; i < 400; i++) { s += step(i); }
        __putint(s);
        return 0;
    }
    """
    exe = link([crt0, compile_module(source, "t.o")], [libmc])
    total = Machine(exe).run(timed=False).instructions
    clear_jit_cache()
    budgets = [1, 7, total // 3, total // 2, total - 1, total, total + 50]
    for budget in budgets:
        want, want_data = _bounded_state(Machine, exe, budget, timed)
        got, got_data = _bounded_state(JitMachine, exe, budget, timed)
        assert got == want, f"budget={budget}"
        assert got_data == want_data, f"budget={budget}: memory diverged"
    assert want[0] == "completed"  # the final budget covers the run


@pytest.mark.parametrize("budget_frac", (3, 2))
def test_budget_fidelity_on_benchsuite_program(budget_frac):
    """The same pin on a real program's much deeper block structure."""
    exe = build.link_variant("eqntott", "each", "ld", 1)
    total = Machine(exe).run(timed=False).instructions
    budget = total // budget_frac
    want, want_data = _bounded_state(Machine, exe, budget, timed=False)
    got, got_data = _bounded_state(JitMachine, exe, budget, timed=False)
    assert got == want == ("tripped", budget)
    assert got_data == want_data
