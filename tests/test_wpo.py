"""Partitioned whole-program optimization: byte-identity, shard
determinism, and incremental relinks through the shard cache."""

import pytest

from repro.benchsuite import build_stdlib
from repro.cache import ArtifactCache
from repro.fuzz.generate import generate_scale_program
from repro.linker import make_crt0
from repro.linker.executable import dump_executable
from repro.linker.resolve import resolve_inputs
from repro.minicc import compile_module
from repro.objfile.archive import Archive
from repro.objfile.serialize import dump_archive, load_archive
from repro.om import OMLevel, OMOptions, om_link
from repro.om.symbolic import translate_module
from repro.wpo import partition_modules


def _compile(program):
    return [make_crt0()] + [
        compile_module(text, name.replace(".mc", ".o"))
        for name, text in program.modules
    ]


def _link(program, options, cache=None):
    lib = build_stdlib()
    libmc = Archive(lib.name, load_archive(dump_archive(lib.members)))
    return om_link(
        _compile(program),
        [libmc],
        level=OMLevel.FULL,
        options=options,
        cache=cache,
    )


def _exe(result) -> bytes:
    return dump_executable(result.executable)


# -- byte-identity --------------------------------------------------------------


def test_wpo_byte_identical_cold_and_warm(tmp_path):
    program = generate_scale_program(11, 10)
    mono = _link(program, OMOptions())
    cache = ArtifactCache(tmp_path, stamp="wpo-test")

    cold = _link(program, OMOptions(partitions=3), cache)
    assert _exe(cold) == _exe(mono)
    assert cold.counters == mono.counters
    assert cold.wpo is not None and cold.wpo.misses > 0

    warm = _link(program, OMOptions(partitions=3), cache)
    assert _exe(warm) == _exe(mono)
    assert warm.counters == mono.counters
    assert warm.wpo.misses == 0 and warm.wpo.hits == cold.wpo.misses
    assert warm.wpo.missed_shards == []


def test_wpo_byte_identical_without_cache_and_across_partition_counts():
    program = generate_scale_program(4, 7)
    mono = _exe(_link(program, OMOptions()))
    for partitions in (2, 4, 7):
        assert _exe(_link(program, OMOptions(partitions=partitions))) == mono


def test_wpo_pooled_workers_match_monolithic():
    program = generate_scale_program(9, 6)
    mono = _link(program, OMOptions())
    pooled = _link(program, OMOptions(partitions=2, wpo_jobs=2))
    assert _exe(pooled) == _exe(mono)
    assert pooled.counters == mono.counters


# -- incrementality -------------------------------------------------------------


def test_one_module_edit_misses_only_its_shard(tmp_path):
    cache = ArtifactCache(tmp_path, stamp="wpo-inc")
    options = OMOptions(partitions=4)
    base = generate_scale_program(7, 12)
    _link(base, options, cache)

    edited = generate_scale_program(7, 12, salts={5: 2})
    mono = _link(edited, OMOptions())
    inc = _link(edited, options, cache)
    assert _exe(inc) == _exe(mono)

    touched = [
        index
        for index, members in enumerate(inc.wpo.members)
        if "s5.o" in members
    ]
    assert len(touched) == 1
    assert inc.wpo.missed_shards == touched
    assert inc.wpo.hits > 0  # the untouched shards replayed from cache


def test_salted_edit_keeps_partition_boundaries(tmp_path):
    base = _link(generate_scale_program(3, 12), OMOptions(partitions=4),
                 ArtifactCache(tmp_path / "a", stamp="s"))
    salted = _link(generate_scale_program(3, 12, salts={4: 5}),
                   OMOptions(partitions=4),
                   ArtifactCache(tmp_path / "b", stamp="s"))
    assert base.wpo.members == salted.wpo.members


# -- partition determinism -------------------------------------------------------


def _symbolic_modules(program):
    inputs = resolve_inputs(_compile(program), [])
    return [translate_module(module) for module in inputs.modules]


def _member_names(modules, shards):
    return [
        sorted(modules[index].name for index in shard.members)
        for shard in shards
    ]


def test_partition_independent_of_module_discovery_order():
    modules = _symbolic_modules(generate_scale_program(13, 9))
    reference = _member_names(modules, partition_modules(modules, 3))
    permuted = list(reversed(modules))
    shuffled = _member_names(permuted, partition_modules(permuted, 3))
    assert sorted(map(tuple, shuffled)) == sorted(map(tuple, reference))


def test_partition_covers_every_module_exactly_once():
    modules = _symbolic_modules(generate_scale_program(2, 8))
    shards = partition_modules(modules, 3)
    seen = [index for shard in shards for index in shard.members]
    assert sorted(seen) == list(range(len(modules)))
    assert 1 <= len(shards) <= 3
    assert all(shard.members for shard in shards)


def test_partition_clamps_to_module_count():
    modules = _symbolic_modules(generate_scale_program(1, 3))
    shards = partition_modules(modules, 99)
    assert len(shards) <= len(modules)


# -- the scale generator ---------------------------------------------------------


def test_scale_generator_is_deterministic():
    a = generate_scale_program(21, 6)
    b = generate_scale_program(21, 6)
    assert a.modules == b.modules
    assert len(a.modules) == 6


def test_scale_salt_changes_exactly_the_named_modules():
    base = generate_scale_program(21, 6)
    salted = generate_scale_program(21, 6, salts={3: 1})
    differing = [
        name
        for (name, text), (__, other) in zip(base.modules, salted.modules)
        if text != other
    ]
    assert differing == ["s3.mc"]


def test_scale_programs_agree_across_link_variants():
    from repro.linker import link
    from repro.machine import run

    program = generate_scale_program(5, 8)
    lib = build_stdlib()
    libmc = Archive(lib.name, load_archive(dump_archive(lib.members)))
    ld = run(link(_compile(program), [libmc]), timed=False,
             max_instructions=5_000_000)
    wpo = run(_link(program, OMOptions(partitions=3)).executable,
              timed=False, max_instructions=5_000_000)
    assert ld.halted and wpo.halted
    assert ld.output == wpo.output
