"""The serve fleet: consistent-hash routing, fleet-wide coalescing,
tenant quotas, counter reconciliation, and daemon-death robustness.

Two gears, mirroring the daemon's own test file:

* **stub-backed** — real :class:`RouterThread` over real TCP, fronting
  :class:`ServerThread` daemons whose job runner is the deterministic
  ``stub_runner`` (the first source text scripts the job), all sharing
  one on-disk cache root.  Routing, coalescing, quota accounting, and
  dead-backend re-mapping are asserted without a toolchain in sight.
* **subprocess** — a real :class:`FleetThread` (daemon subprocesses,
  shared cache, health-checked restart) for the kill-a-daemon
  scenario: SIGKILL mid-burst, no hangs, ring re-map, automatic
  restart, and warm service from the shared cache afterwards.
"""

import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager

import pytest

from repro.cache import ArtifactCache
from repro.serve.client import ServeClient, ServerBusy
from repro.serve.quota import QuotaManager, TenantPolicy
from repro.serve.router import RouterConfig, RouterThread
from repro.serve.server import ServeConfig, ServerThread

from tests.test_serve_server import stub_runner


def _sources(script, name="m.mc"):
    return [[name, script]]


@contextmanager
def stub_fleet(tmp_path, n=2, *, quotas=None, retry_after=0.01, **server_cfg):
    """n stub daemons sharing one cache root, behind a real router."""
    server_cfg.setdefault("workers", 4)
    server_cfg.setdefault("queue_limit", 16)
    servers = []
    router = None
    try:
        for _ in range(n):
            thread = ServerThread(
                ArtifactCache(tmp_path / "cache", stamp="test"),
                ServeConfig(**server_cfg),
                executor=ThreadPoolExecutor(
                    max_workers=server_cfg["workers"]
                ),
                job_runner=stub_runner,
            )
            thread.start()
            servers.append(thread)
        router = RouterThread(
            {f"d{i}": thread.address for i, thread in enumerate(servers)},
            RouterConfig(retry_after=retry_after),
            quotas=QuotaManager(quotas or {}, retry_after=retry_after),
        )
        router.start()
        yield router, servers
    finally:
        if router is not None:
            router.stop()
        for thread in servers:
            thread.stop()


def _route(client, **params):
    return client.request("route", **params)["result"]


# -- routing -------------------------------------------------------------------


def test_routing_is_consistent_and_content_keyed(tmp_path):
    with stub_fleet(tmp_path, n=2) as (router, _servers):
        with ServeClient(router.address, timeout=30) as client:
            slots = set()
            for i in range(24):
                params = {"sources": _sources(f"text-{i}"), "mode": "each"}
                first = _route(client, **params)
                again = _route(client, **params)
                assert first["slot"] == again["slot"]
                assert first["slot"] in ("d0", "d1")
                assert first["address"] is not None
                # Accounting fields must not move the routing decision.
                tagged = _route(client, tenant="t9",
                                request_id="c1:1", **params)
                assert tagged["slot"] == first["slot"]
                slots.add(first["slot"])
            # 24 distinct keys must spread over both daemons.
            assert slots == {"d0", "d1"}


def test_identical_requests_coalesce_fleet_wide(tmp_path):
    """Content-hash routing sends every copy of an in-flight request
    to the same daemon, where SingleFlight merges them — the coalesce
    win survives the scale-out."""
    with stub_fleet(tmp_path, n=2) as (router, _servers):
        with ServeClient(router.address, timeout=30) as probe:
            before = probe.status()
            assert before["role"] == "fleet"
        n = 6
        barrier = threading.Barrier(n)
        responses = []
        lock = threading.Lock()

        def fire():
            with ServeClient(router.address, timeout=30) as client:
                barrier.wait(timeout=10)
                response = client.run(
                    sources=_sources("sleep:0.8"), variant="ld"
                )
                with lock:
                    responses.append(response)

        threads = [threading.Thread(target=fire) for _ in range(n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(responses) == n
        assert all(response["ok"] for response in responses)
        with ServeClient(router.address, timeout=30) as probe:
            final = probe.status()
        completed = final["counters"]["completed"] - before["counters"]["completed"]
        coalesced = final["counters"]["coalesced"] - before["counters"]["coalesced"]
        computed = final["counters"]["computed"] - before["counters"]["computed"]
        assert completed == n
        assert computed == 1  # one flight, on one daemon
        assert coalesced == n - 1
        assert final["router"]["counters"]["completed"] >= n


def test_fleet_status_aggregates_and_identity_holds(tmp_path):
    with stub_fleet(tmp_path, n=2) as (router, servers):
        with ServeClient(router.address, timeout=30) as client:
            for i in range(10):
                assert client.compile(sources=_sources(f"job-{i}"))["ok"]
            # Replay: all served warm (cache hit on whichever daemon).
            for i in range(10):
                response = client.compile(sources=_sources(f"job-{i}"))
                assert response["cached"]
            status = client.status()
        counters = status["counters"]
        assert counters["completed"] == 20
        assert counters["completed"] == (
            counters["coalesced"] + counters["cache_hits"]
            + counters["computed"]
        )
        assert counters["cache_hits"] == 10
        # The summed view really is the sum of the per-daemon payloads.
        by_daemon = [
            entry["status"]["counters"]
            for entry in status["daemons"].values()
        ]
        assert counters["completed"] == sum(
            c["completed"] for c in by_daemon
        )
        assert sum(c["computed"] for c in by_daemon) == 10


# -- tenant quotas and reconciliation (satellite) ------------------------------


def test_reconciliation_holds_under_quota_rejections(tmp_path):
    """Fleet-wide ``completed == coalesced + cache_hits + computed``
    must survive tenant-quota rejections, which are accounted in their
    own series — router ``quota_rejected`` and per-tenant ``rejected``
    — and never as failures anywhere."""
    quotas = {"limited": TenantPolicy(rate=0.0001, burst=1.0)}
    with stub_fleet(tmp_path, n=2, quotas=quotas) as (router, _servers):
        with ServeClient(router.address, timeout=30) as probe:
            before = probe.status()

        free_ok = limited_ok = limited_rejected = 0
        with ServeClient(router.address, timeout=30, retries=0,
                         tenant="limited") as limited:
            for i in range(5):
                try:
                    limited.compile(sources=_sources(f"lim-{i}"))
                    limited_ok += 1
                except ServerBusy as exc:
                    assert exc.reason == "quota"
                    assert exc.retry_after > 0
                    limited_rejected += 1
        with ServeClient(router.address, timeout=30,
                         tenant="free") as free:
            for i in range(4):
                assert free.compile(sources=_sources(f"free-{i}"))["ok"]
                free_ok += 1
            assert free.compile(sources=_sources("free-0"))["cached"]
            free_ok += 1

        assert limited_ok == 1  # one burst token
        assert limited_rejected == 4

        with ServeClient(router.address, timeout=30) as probe:
            final = probe.status()
        delta = {
            key: final["counters"][key] - before["counters"].get(key, 0)
            for key in final["counters"]
        }
        # The serving identity, summed across daemon status payloads.
        assert delta["completed"] == (
            delta["coalesced"] + delta["cache_hits"] + delta["computed"]
        )
        assert delta["completed"] == free_ok + limited_ok
        # Rejections are counted separately — never as failures.
        assert delta["failed"] == 0
        rdelta = final["router"]["counters"]
        assert rdelta["failed"] == 0
        assert rdelta["quota_rejected"] == limited_rejected
        assert rdelta["rejected"] == limited_rejected
        # Per-tenant ledgers, summed fleet-wide by the router.
        assert final["tenants"]["limited"]["completed"] == 1
        assert final["tenants"]["free"]["completed"] == free_ok
        router_tenants = final["router"]["tenants"]
        assert router_tenants["limited"]["rejected"] == limited_rejected
        assert router_tenants["limited"]["completed"] == 1
        assert router_tenants["free"]["completed"] == free_ok
        # Quota snapshot agrees too.
        quota_view = final["router"]["quotas"]["limited"]
        assert quota_view["admitted"] == 1
        assert quota_view["rejected_rate"] == limited_rejected


def test_fleet_metrics_fan_out_aggregates_counters(tmp_path):
    with stub_fleet(tmp_path, n=2) as (router, _servers):
        with ServeClient(router.address, timeout=30,
                         tenant="t1") as client:
            for i in range(6):
                assert client.compile(sources=_sources(f"m-{i}"))["ok"]
            status = client.status()
            payload = client.metrics()
        aggregated = {
            (series["name"], tuple(sorted(series["labels"].items()))):
                series["value"]
            for series in payload["fleet"]["counters"]
        }
        assert aggregated[("serve_completed_total", ())] == 6
        assert aggregated[
            ("serve_tenant_completed_total", (("tenant", "t1"),))
        ] == 6
        assert status["counters"]["completed"] == 6
        assert "router_completed_total" in payload["text"]
        assert len(payload["daemons"]) == 2


# -- dead backends (stub) ------------------------------------------------------


def test_dead_backend_remaps_its_slice_without_client_errors(tmp_path):
    with stub_fleet(tmp_path, n=2) as (router, servers):
        with ServeClient(router.address, timeout=30) as client:
            # Find a key each daemon owns.
            owned = {}
            for i in range(40):
                params = {"sources": _sources(f"key-{i}"), "mode": "each"}
                slot = _route(client, **params)["slot"]
                owned.setdefault(slot, params)
                if len(owned) == 2:
                    break
            assert set(owned) == {"d0", "d1"}

            servers[1].stop()  # daemon d1 dies (listener gone)

            # A request for d1's key is re-mapped and served by d0 —
            # transparently, because jobs are idempotent.
            response = client.request("compile", **owned["d1"])
            assert response["ok"]
            status = client.status()
        assert status["router"]["ring"]["healthy"] == ["d0"]
        assert status["daemons"]["d1"]["healthy"] is False
        assert status["router"]["counters"]["upstream_errors"] >= 1


def test_no_healthy_backends_surfaces_as_retryable_busy(tmp_path):
    with stub_fleet(tmp_path, n=1) as (router, servers):
        servers[0].stop()
        with ServeClient(router.address, timeout=30, retries=1,
                         sleep=lambda s: None) as client:
            with pytest.raises(ServerBusy) as err:
                client.compile(sources=_sources("orphan"))
        # Not a hang, not a hard failure: a retryable busy reply
        # tagged with the upstream reason.
        assert err.value.reason == "upstream"
        assert err.value.retry_after > 0


# -- kill a daemon (subprocess fleet, satellite) -------------------------------

#: ~8M simulated instructions: slow enough (~2 s) to SIGKILL mid-run.
_SLOW_SOURCE = """\
int main() {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < 1000000; i++) {
        acc = acc + 1;
    }
    return acc - 1000000;
}
"""


def _poll(predicate, deadline_s, period=0.1):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(period)
    return predicate()


def test_sigkill_mid_burst_remaps_restarts_and_serves_warm(tmp_path):
    """SIGKILL one of two real daemons mid-request: the in-flight
    request completes on the survivor (no hang, no hard error), the
    ring drops to one healthy slot, the supervisor restarts the slot,
    and the restarted daemon answers its old keys warm from the
    shared cache."""
    from repro.serve.fleet import FleetConfig, FleetThread

    config = FleetConfig(
        size=2, workers=1, queue_limit=8,
        cache_dir=str(tmp_path / "cache"),
        health_interval=0.1,
        restart_backoff=0.5,  # widen the one-healthy window we assert on
    )
    with FleetThread(config) as fleet:
        address = fleet.address
        with ServeClient(address, timeout=120, retries=8) as client:
            # Warm one key per slot (computed now, cached on shared disk).
            warm = {}
            for i in range(40):
                params = {
                    "sources": _sources(f"int main() {{ return {i}; }}"),
                    "mode": "each",
                }
                slot = _route(client, **params)["slot"]
                if slot not in warm:
                    assert client.compile(**params)["ok"]
                    warm[slot] = params
                if len(warm) == 2:
                    break
            assert set(warm) == {"d0", "d1"}

            slow = {
                "sources": _sources(_SLOW_SOURCE, name="slow.mc"),
                "mode": "each", "variant": "om-full", "timed": False,
            }
            victim = _route(client, **slow)["slot"]
            survivor = "d0" if victim == "d1" else "d1"
            pids = fleet.call(
                lambda s: {slot: d.pid for slot, d in s.daemons.items()}
            )

            box = {}

            def fire():
                with ServeClient(address, timeout=120, retries=8) as c:
                    try:
                        box["response"] = c.request("run", **slow)
                    except Exception as exc:  # noqa: BLE001 - recorded
                        box["error"] = exc

            burst = threading.Thread(target=fire)
            burst.start()
            time.sleep(0.8)  # the run is now in flight on the victim
            os.kill(pids[victim], signal.SIGKILL)

            # The ring sheds exactly the dead slot...
            assert _poll(
                lambda: client.status()["router"]["ring"]["healthy"]
                == [survivor],
                deadline_s=5.0, period=0.05,
            )

            # ...and the in-flight request neither hangs nor errors:
            # it is re-mapped and recomputed by the survivor.
            burst.join(timeout=90)
            assert not burst.is_alive(), "request hung after SIGKILL"
            assert "error" not in box, f"request failed: {box.get('error')}"
            assert box["response"]["ok"]

            # The supervisor restarts the slot automatically.
            assert _poll(
                lambda: sorted(
                    client.status()["router"]["ring"]["healthy"]
                ) == ["d0", "d1"],
                deadline_s=30.0,
            )
            assert fleet.call(lambda s: dict(s.restarts))[victim] == 1
            status = client.status()
            new_pid = status["daemons"][victim]["status"]["pid"]
            assert new_pid != pids[victim]

            # The restarted daemon serves its old key warm from the
            # shared cache: same slot, zero recompute.
            assert _route(client, **warm[victim])["slot"] == victim
            response = client.compile(**warm[victim])
            assert response["ok"] and response["cached"]
