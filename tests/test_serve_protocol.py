"""The daemon's wire format: framing, ceilings, truncation, shapes."""

import asyncio
import socket

import pytest

from repro.serve import protocol


def _pipe():
    """A connected (client, server) socket pair."""
    return socket.socketpair()


# -- encode / decode -----------------------------------------------------------


def test_encode_decode_roundtrip():
    frame = protocol.encode_frame({"op": "status", "id": 7})
    assert frame[:4] == (len(frame) - 4).to_bytes(4, "big")
    assert protocol.decode_body(frame[4:]) == {"op": "status", "id": 7}


def test_encode_refuses_oversized_frame():
    with pytest.raises(protocol.FrameTooLarge):
        protocol.encode_frame({"blob": "x" * 64}, max_frame=32)


def test_decode_rejects_non_json_and_non_object():
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_body(b"\xff\xfe not json")
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_body(b"[1, 2, 3]")


# -- blocking-socket codec -----------------------------------------------------


def test_socket_roundtrip_and_clean_eof():
    a, b = _pipe()
    protocol.send_frame(a, {"id": 1, "op": "status"})
    protocol.send_frame(a, {"id": 2, "op": "run", "program": "li"})
    assert protocol.recv_frame(b) == {"id": 1, "op": "status"}
    assert protocol.recv_frame(b) == {"id": 2, "op": "run", "program": "li"}
    a.close()
    assert protocol.recv_frame(b) is None  # EOF at a frame boundary
    b.close()


def test_truncated_header_and_body_raise():
    a, b = _pipe()
    a.sendall(b"\x00\x00")  # half a header
    a.close()
    with pytest.raises(protocol.TruncatedFrame):
        protocol.recv_frame(b)
    b.close()

    a, b = _pipe()
    frame = protocol.encode_frame({"id": 1, "op": "status"})
    a.sendall(frame[:-3])  # header promises more body than arrives
    a.close()
    with pytest.raises(protocol.TruncatedFrame):
        protocol.recv_frame(b)
    b.close()


def test_oversized_header_rejected_before_buffering():
    a, b = _pipe()
    a.sendall((1 << 30).to_bytes(4, "big"))
    with pytest.raises(protocol.FrameTooLarge):
        protocol.recv_frame(b)
    a.close()
    b.close()


# -- asyncio codec -------------------------------------------------------------


def _serve_bytes(data: bytes):
    """Feed raw bytes through a real asyncio stream; return read_frame's
    results (or the raised exception) until EOF."""

    async def main():
        server_done = asyncio.Event()
        results = []

        async def handler(reader, writer):
            try:
                while True:
                    frame = await protocol.read_frame(reader)
                    results.append(frame)
                    if frame is None:
                        break
            except protocol.ProtocolError as exc:
                results.append(exc)
            finally:
                writer.close()
                server_done.set()

        server = await asyncio.start_server(handler, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        _, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(data)
        await writer.drain()
        writer.close()
        await asyncio.wait_for(server_done.wait(), timeout=10)
        server.close()
        await server.wait_closed()
        return results

    return asyncio.run(main())


def test_async_roundtrip_and_eof():
    data = protocol.encode_frame({"id": 1}) + protocol.encode_frame({"id": 2})
    results = _serve_bytes(data)
    assert results == [{"id": 1}, {"id": 2}, None]


def test_async_truncated_frame():
    data = protocol.encode_frame({"id": 1, "pad": "x" * 100})[:-10]
    (result,) = _serve_bytes(data)
    assert isinstance(result, protocol.TruncatedFrame)


def test_async_oversized_frame():
    (result,) = _serve_bytes((1 << 31).to_bytes(4, "big"))
    assert isinstance(result, protocol.FrameTooLarge)


# -- message shapes ------------------------------------------------------------


def test_message_shapes():
    req = protocol.request("run", 3, program="li", scale=1)
    assert req == {"id": 3, "op": "run", "program": "li", "scale": 1}
    ok = protocol.ok_response(3, {"cycles": 9}, cached=True)
    assert ok["ok"] and ok["cached"] and not ok["coalesced"]
    err = protocol.error_response(3, "bad-request", "nope")
    assert not err["ok"] and err["error"]["kind"] == "bad-request"
    busy = protocol.busy_response(3, 0.25)
    assert not busy["ok"] and busy["retry_after"] == 0.25


def test_ops_inventory():
    assert set(protocol.JOB_OPS) == {"compile", "link", "run", "explain"}
    assert set(protocol.ADMIN_OPS) == {"status", "metrics", "shutdown"}
