"""ATOM-style instrumentation tests."""

import pytest

from repro.benchsuite import build_program
from repro.linker import link
from repro.machine import run
from repro.minicc import compile_module
from repro.om.instrument import link_with_entry_counters


def test_counts_direct_and_library_calls(libmc, crt0):
    source = """
    extern int gcd(int a, int b);
    int helper(int x) { return x + 1; }
    int main() {
        int i;
        int s = 0;
        for (i = 0; i < 4; i++) { s += helper(i); }
        s += gcd(12, 18);
        __putint(s);
        return 0;
    }
    """
    objs = [crt0, compile_module(source, "m.o")]
    baseline = run(link(objs, [libmc]), timed=False)
    program = link_with_entry_counters(objs, [libmc])
    result, counts = program.run_with_counts()
    assert result.output == baseline.output
    assert counts["main"] == 1
    assert counts["helper"] == 4
    assert counts["gcd"] == 1
    # gcd calls iabs twice and __remq in its loop.
    assert counts["iabs"] == 2
    assert counts["__remq"] >= 1


def test_instrumentation_only_adds_instructions(libmc, crt0):
    objs = [crt0, compile_module("int main() { __putint(7); return 0; }", "m.o")]
    baseline = run(link(objs, [libmc]), timed=False)
    program = link_with_entry_counters(objs, [libmc])
    result, counts = program.run_with_counts()
    assert result.output == baseline.output
    assert result.instructions == baseline.instructions + 4 * sum(counts.values())


def test_counts_recursive_procedures(libmc, crt0):
    source = """
    int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
    int main() { __putint(fib(10)); return 0; }
    """
    objs = [crt0, compile_module(source, "m.o")]
    program = link_with_entry_counters(objs, [libmc])
    result, counts = program.run_with_counts()
    assert result.output == "55\n"
    assert counts["fib"] == 177  # calls of fib(10)


def test_multi_gat_group_rejected(libmc, crt0):
    """Entry counters index off the caller's GP, which is only valid
    when the whole program shares one GAT group."""
    objs = [crt0, compile_module("int main() { __putint(1); return 0; }", "m.o")]
    with pytest.raises(ValueError, match="single GAT group"):
        link_with_entry_counters(objs, [libmc], gat_capacity=1)


def test_gat_capacity_override_passthrough(libmc, crt0):
    objs = [crt0, compile_module("int main() { __putint(3); return 0; }", "m.o")]
    program = link_with_entry_counters(objs, [libmc], gat_capacity=8190)
    result, counts = program.run_with_counts()
    assert result.output == "3\n"
    assert counts["main"] == 1


def test_counter_symbol_collision_rejected(libmc, crt0):
    source = """
    int __proc_counts;
    int main() { __putint(__proc_counts); return 0; }
    """
    objs = [crt0, compile_module(source, "m.o")]
    with pytest.raises(ValueError, match="__proc_counts"):
        link_with_entry_counters(objs, [libmc])


def test_counter_symbol_proc_collision_rejected(libmc, crt0):
    source = """
    int __proc_counts(int x) { return x; }
    int main() { __putint(__proc_counts(2)); return 0; }
    """
    objs = [crt0, compile_module(source, "m.o")]
    with pytest.raises(ValueError, match="__proc_counts"):
        link_with_entry_counters(objs, [libmc])


def test_benchmark_instrumented_end_to_end(libmc, crt0):
    objs = [crt0] + build_program("eqntott", "each", scale=1)
    baseline = run(link(objs, [libmc]), timed=False)
    program = link_with_entry_counters(objs, [libmc])
    result, counts = program.run_with_counts()
    assert result.output == baseline.output
    assert counts["main"] == 1
    assert counts["qsort64"] >= 5  # recursive sorter, called per round
    assert counts["cmp_asc"] > 100  # comparator via function pointer
