"""ProfileResult JSON round-trip: lossless, deterministic, cacheable."""

import json

from repro.cache import ArtifactCache
from repro.experiments import build
from repro.machine.cpu import RunResult
from repro.machine.profile import OverheadCounts, ProcProfile, ProfileResult


def _sample():
    return ProfileResult(
        run=RunResult(
            output="42\n",
            instructions=100,
            cycles=150,
            icache_misses=3,
            dcache_misses=2,
            dual_issues=7,
            halted=True,
        ),
        procs=[
            ProcProfile("main", 60, 0.6, cycles=90, cycle_fraction=0.6,
                        gat_loads=4, pv_loads=2, gp_setup_pairs=1),
            ProcProfile("helper", 40, 0.4, cycles=60, cycle_fraction=0.4,
                        gat_loads=1),
        ],
        overhead=OverheadCounts(gat_loads=5, pv_loads=2, gp_setup_pairs=1),
    )


def test_round_trip_lossless():
    original = _sample()
    restored = ProfileResult.from_json(original.to_json())
    assert restored == original


def test_round_trip_via_dict():
    original = _sample()
    payload = json.loads(original.to_json())
    assert ProfileResult.from_json_dict(payload) == original


def test_serialization_deterministic_under_proc_order():
    a = _sample()
    b = _sample()
    b.procs.reverse()
    assert a.to_json() == b.to_json()


def test_tied_procs_ordered_by_name():
    result = _sample()
    result.procs = [
        ProcProfile("zeta", 50, 0.5),
        ProcProfile("alpha", 50, 0.5),
    ]
    names = [p["name"] for p in result.to_json_dict()["procs"]]
    assert names == ["alpha", "zeta"]


def test_profile_survives_artifact_cache(tmp_path):
    """A cold profile_variant and its warm-cache replay are equal."""
    previous = build.configure_cache(ArtifactCache(tmp_path / "cache"))
    try:
        cold = build.profile_variant("compress", "each", "om-full", 1)
        build.clear_caches()  # drop memoization, keep the disk cache
        warm = build.profile_variant("compress", "each", "om-full", 1)
        assert warm == cold
        assert warm.to_json() == cold.to_json()
    finally:
        build.configure_cache(previous)
