"""Standard linker tests: resolution, layout, GAT merging, relocation."""

import pytest

from repro.linker import LinkError, link, make_crt0
from repro.linker.executable import DATA_BASE, TEXT_BASE
from repro.linker.layout import GP_BIAS, LayoutOptions, compute_layout
from repro.linker.resolve import resolve_inputs
from repro.machine import run
from repro.minicc import Options, compile_module
from repro.objfile.archive import Archive
from repro.objfile.sections import SectionKind

NOSCHED = Options(schedule=False)


def module(source, name="m.o"):
    return compile_module(source, name, NOSCHED)


def test_resolution_across_modules():
    a = module("extern int g; int f() { return g; }", "a.o")
    b = module("int g = 7;", "b.o")
    inputs = resolve_inputs([a, b])
    assert {m.name for m in inputs.modules} == {"a.o", "b.o"}
    assert "g" in inputs.globals


def test_unresolved_symbol_reported():
    a = module("extern int nowhere(int x); int f() { return nowhere(1); }", "a.o")
    with pytest.raises(LinkError, match="nowhere"):
        resolve_inputs([a])


def test_multiply_defined_rejected():
    a = module("int g = 1;", "a.o")
    b = module("int g = 2;", "b.o")
    with pytest.raises(LinkError, match="multiply defined"):
        resolve_inputs([a, b])


def test_archive_pulled_only_on_demand():
    used = module("int used() { return 1; }", "used.o")
    unused = module("int unused() { return 2; }", "unused.o")
    lib = Archive("lib", [used, unused])
    main = module("extern int used(); int f() { return used(); }", "main.o")
    inputs = resolve_inputs([main], [lib])
    names = {m.name for m in inputs.modules}
    assert "used.o" in names and "unused.o" not in names


def test_archive_transitive_pull():
    # a needs b, b needs c: library-to-library dependency chains.
    b = module("extern int c(); int b() { return c(); }", "b.o")
    c = module("int c() { return 3; }", "c.o")
    lib = Archive("lib", [b, c])
    main = module("extern int b(); int f() { return b(); }", "main.o")
    inputs = resolve_inputs([main], [lib])
    assert {m.name for m in inputs.modules} == {"main.o", "b.o", "c.o"}


def test_common_takes_max_size():
    a = module("int shared[4];", "a.o")
    b = module("int shared[16];", "b.o")
    inputs = resolve_inputs([a, b])
    assert inputs.commons["shared"][0] == 128


def test_definition_overrides_common():
    a = module("int shared[4];", "a.o")
    b = module("int shared[2] = {1, 2};", "b.o")
    inputs = resolve_inputs([a, b])
    assert "shared" not in inputs.commons
    assert "shared" in inputs.globals


def test_layout_segments_and_gat():
    a = module("int g; int f() { return g; }", "a.o")
    inputs = resolve_inputs([a])
    layout = compute_layout(inputs)
    assert layout.section_base(0, SectionKind.TEXT) == TEXT_BASE
    group = layout.groups[0]
    assert group.start == DATA_BASE
    assert group.gp == DATA_BASE + GP_BIAS
    assert group.size == 8  # one literal: g


def test_gat_deduplicates_across_modules():
    a = module("extern int g; int f1() { return g; }", "a.o")
    b = module("extern int g; int f2() { return g + 1; }", "b.o")
    c = module("int g;", "c.o")
    inputs = resolve_inputs([a, b, c])
    layout = compute_layout(inputs)
    # One slot for g despite two referencing modules.
    keys = [k for k in layout.groups[0].slots if k[1] == "g"]
    assert len(keys) == 1


def test_local_statics_not_merged():
    a = module("static int t = 1; int fa() { return t; }", "a.o")
    b = module("static int t = 2; int fb() { return t; }", "b.o")
    inputs = resolve_inputs([a, b])
    layout = compute_layout(inputs)
    slots = [k for k in layout.groups[0].slots if k[0] == "l"]
    assert len(slots) == 2  # module-scoped, distinct GAT entries


def test_gat_capacity_splits_groups():
    modules = [
        module(f"int g{i}_a; int g{i}_b; int f{i}() {{ return g{i}_a + g{i}_b; }}", f"m{i}.o")
        for i in range(4)
    ]
    inputs = resolve_inputs(modules)
    layout = compute_layout(inputs, LayoutOptions(gat_capacity=3))
    assert len(layout.groups) >= 2
    assert len(set(layout.module_group)) >= 2
    # Every group's slots fit its capacity.
    for group in layout.groups:
        assert len(group.slots) <= 3


def test_sorted_commons_placed_after_gat_by_size():
    a = module(
        "int big[1000]; int tiny; int f() { return tiny + big[0]; }", "a.o"
    )
    inputs = resolve_inputs([a])
    layout = compute_layout(inputs, LayoutOptions(sort_commons=True))
    assert layout.common_addr["tiny"] < layout.common_addr["big"]
    gat_end = layout.groups[0].start + layout.groups[0].size
    assert layout.common_addr["tiny"] == gat_end


def test_executable_runs_with_multiple_gat_groups(libmc, crt0):
    """Multi-GAT linking: calling conventions must re-establish GP
    across groups; output must match the single-group link."""
    sources = [
        ("extern int leaf(int x); int helper(int x) { return leaf(x) + 1; }", "h.o"),
        ("int leaf(int x) { return x * 3; }", "l.o"),
        (
            "extern int helper(int x); int main() { __putint(helper(4)); return 0; }",
            "m.o",
        ),
    ]
    objs = [crt0] + [module(s, n) for s, n in sources]
    single = run(link(objs, [libmc]))
    multi = run(link(objs, [libmc], options=LayoutOptions(gat_capacity=2)))
    assert single.output == multi.output == "13\n"


def test_entry_symbol_required():
    a = module("int f() { return 0; }", "a.o")
    with pytest.raises(LinkError, match="__start"):
        link([a])


def test_branch_relocation_resolves_cross_module(libmc, crt0):
    # static call within module + cross-module call, exercising BRADDR.
    a = module(
        "static int two() { return 2; } extern int three();"
        "int main() { __putint(two() + three()); return 0; }",
        "a.o",
    )
    b = module("int three() { return 3; }", "b.o")
    result = run(link([crt0, a, b], [libmc]))
    assert result.output == "5\n"


def test_gpdisp_patched_for_moved_pair(libmc, crt0):
    """With scheduling on, the GP pair sits away from its base point;
    the GPDISP extra field must still produce a correct GP."""
    source = """
    int g = 11;
    extern int lib_id(int x);
    int main() {
        int a = lib_id(1);
        __putint(g + a);
        return 0;
    }
    """
    helper = compile_module("int lib_id(int x) { return x; }", "h.o", NOSCHED)
    scheduled = compile_module(source, "m.o", Options(schedule=True))
    result = run(link([crt0, scheduled, helper], [libmc]))
    assert result.output == "12\n"


def test_data_initializers_and_jump_table_relocs(libmc, crt0):
    source = """
    int table[3] = {10, 20, 30};
    int main() {
        int i;
        int s = 0;
        for (i = 0; i < 3; i++) {
            switch (i) {
                case 0: s += table[0]; break;
                case 1: s += table[1]; break;
                case 2: s += table[2]; break;
                case 3: s += 99; break;
                case 4: s += 99; break;
            }
        }
        __putint(s);
        return 0;
    }
    """
    result = run(link([crt0, module(source)], [libmc]))
    assert result.output == "60\n"
