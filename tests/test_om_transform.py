"""OM transformation tests: each optimization of the paper's catalogue."""

from repro.isa.encoding import decode_stream
from repro.isa.registers import Reg
from repro.linker import link, make_crt0
from repro.linker.layout import LayoutOptions
from repro.machine import run
from repro.minicc import Options, compile_module
from repro.objfile.archive import Archive
from repro.objfile.sections import SectionKind
from repro.om import OMLevel, OMOptions, om_link

NOSCHED = Options(schedule=False)


def exe_instrs(executable):
    return decode_stream(executable.text_bytes())


def om(objs, lib, level, **opt_kwargs):
    return om_link(objs, [lib], level=level, options=OMOptions(**opt_kwargs))


def simple_program(crt0):
    main = compile_module(
        """
        int counter;
        int table[8];
        extern int helper(int x);
        int main() {
            int i;
            for (i = 0; i < 8; i++) { table[i] = helper(i); }
            counter = table[3];
            __putint(counter);
            return 0;
        }
        """,
        "main.o",
    )
    helper = compile_module("int g2; int helper(int x) { g2 = x; return x * 2; }", "h.o")
    return [crt0, main, helper]


def test_levels_preserve_output(libmc, crt0):
    objs = simple_program(crt0)
    expected = run(link(objs, [libmc])).output
    for level in (OMLevel.NONE, OMLevel.SIMPLE, OMLevel.FULL):
        result = om(objs, libmc, level)
        assert run(result.executable).output == expected, level
    sched = om(objs, libmc, OMLevel.FULL, schedule=True)
    assert run(sched.executable).output == expected


def test_simple_preserves_text_size(libmc, crt0):
    objs = simple_program(crt0)
    result = om(objs, libmc, OMLevel.SIMPLE)
    assert result.stats.text_bytes_after == result.stats.text_bytes_before


def test_full_shrinks_text(libmc, crt0):
    objs = simple_program(crt0)
    result = om(objs, libmc, OMLevel.FULL)
    assert result.stats.text_bytes_after < result.stats.text_bytes_before


def test_simple_nullifies_with_nops(libmc, crt0):
    objs = simple_program(crt0)
    result = om(objs, libmc, OMLevel.SIMPLE)
    nops = sum(1 for i in exe_instrs(result.executable) if i.is_nop)
    assert nops > 0
    assert result.stats.after.nops == nops


def test_full_deletes_instead_of_nops(libmc, crt0):
    objs = simple_program(crt0)
    result = om(objs, libmc, OMLevel.FULL)
    nops = sum(1 for i in exe_instrs(result.executable) if i.is_nop)
    assert nops == 0


def test_gp_resets_removed_single_gat(libmc, crt0):
    objs = simple_program(crt0)
    for level in (OMLevel.SIMPLE, OMLevel.FULL):
        result = om(objs, libmc, level)
        assert result.stats.after.gp_resets == 0, level
        assert result.stats.before.gp_resets > 0


def test_jsr_becomes_bsr(libmc, crt0):
    objs = simple_program(crt0)
    result = om(objs, libmc, OMLevel.SIMPLE)
    instrs = exe_instrs(result.executable)
    assert not any(i.op.name == "jsr" for i in instrs)
    assert any(i.op.name == "bsr" for i in instrs)


def test_full_removes_pv_loads_simple_keeps_most(libmc, crt0):
    objs = simple_program(crt0)
    simple = om(objs, libmc, OMLevel.SIMPLE)
    full = om(objs, libmc, OMLevel.FULL)
    assert full.stats.after.pv_loads == 0
    assert simple.stats.after.pv_loads >= full.stats.after.pv_loads


def test_full_gat_reduction(libmc, crt0):
    objs = simple_program(crt0)
    result = om(objs, libmc, OMLevel.FULL)
    assert result.stats.gat_bytes_after < result.stats.gat_bytes_before
    assert result.executable.gat_size == result.stats.gat_bytes_after


def test_indirect_calls_keep_pv(libmc, crt0):
    main = compile_module(
        """
        int add1(int x) { return x + 1; }
        int add2(int x) { return x + 2; }
        int main() {
            int *f = &add1;
            int s = f(10);
            f = &add2;
            __putint(s + f(20));
            return 0;
        }
        """,
        "main.o",
    )
    objs = [crt0, main]
    base = run(link(objs, [libmc])).output
    result = om(objs, libmc, OMLevel.FULL)
    assert run(result.executable).output == base == "33\n"
    # Indirect calls survive as jsr and count as needing PV.
    instrs = exe_instrs(result.executable)
    assert any(i.op.name == "jsr" for i in instrs)
    assert result.stats.after.pv_loads > 0


def test_full_removes_entry_gp_setup_when_all_sites_skip(libmc, crt0):
    objs = simple_program(crt0)
    result = om(objs, libmc, OMLevel.FULL)
    assert result.counters.entry_setups_removed > 0


def test_entry_point_keeps_gp_setup(libmc, crt0):
    objs = simple_program(crt0)
    result = om(objs, libmc, OMLevel.FULL)
    exe = result.executable
    instrs = exe_instrs(exe)
    start = (exe.entry - exe.segments[0].vaddr) >> 2
    assert instrs[start].op.name == "ldah" and instrs[start].ra == Reg.GP


def test_address_taken_proc_keeps_entry_setup(libmc, crt0):
    main = compile_module(
        """
        int gvar;
        int touch(int x) { gvar = gvar + x; return gvar; }
        int main() {
            int *f = &touch;
            __putint(touch(1) + f(2));
            return 0;
        }
        """,
        "main.o",
    )
    objs = [crt0, main]
    result = om(objs, libmc, OMLevel.FULL)
    assert run(result.executable).output == "4\n"
    # touch uses GP and is address-taken: setup must survive.
    exe = result.executable
    proc = exe.proc_named("touch")
    start = (proc.addr - exe.segments[0].vaddr) >> 2
    instrs = exe_instrs(exe)
    assert instrs[start].op.name == "ldah" and instrs[start].ra == Reg.GP


def test_multi_gat_resets_kept_across_groups(libmc, crt0):
    """With a forced tiny GAT capacity, calls across GAT groups must
    keep their GP-resets; behaviour must be preserved."""
    mods = [
        compile_module(
            f"int g{i}a; int g{i}b; int f{i}(int x) "
            f"{{ g{i}a = x; g{i}b = x + {i}; return g{i}a + g{i}b; }}",
            f"m{i}.o",
        )
        for i in range(4)
    ]
    main = compile_module(
        """
        extern int f0(int x); extern int f1(int x);
        extern int f2(int x); extern int f3(int x);
        int main() {
            __putint(f0(1) + f1(2) + f2(3) + f3(4));
            return 0;
        }
        """,
        "main.o",
    )
    objs = [crt0, main] + mods
    base = run(link(objs, [libmc])).output
    result = om_link(
        objs,
        [libmc],
        level=OMLevel.FULL,
        options=OMOptions(gat_capacity=4),
    )
    assert len(result.executable.gp_values) > 1
    assert run(result.executable).output == base
    assert result.stats.after.gp_resets > 0  # cross-group calls keep them


def test_sorted_commons_ablation(libmc, crt0):
    """Disabling small-data sorting must reduce nullification."""
    main = compile_module(
        """
        int huge[9000];
        int tiny;
        int main() {
            int i;
            tiny = 0;
            for (i = 0; i < 50; i++) { tiny += i; huge[i] = tiny; }
            __putint(tiny + huge[49]);
            return 0;
        }
        """,
        "main.o",
    )
    objs = [crt0, main]
    base = run(link(objs, [libmc])).output
    sorted_run = om_link(objs, [libmc], level=OMLevel.SIMPLE)
    unsorted_run = om_link(
        objs, [libmc], level=OMLevel.SIMPLE, options=OMOptions(sort_commons=False)
    )
    assert run(sorted_run.executable).output == base
    assert run(unsorted_run.executable).output == base
    assert (
        sorted_run.stats.loads_nullified >= unsorted_run.stats.loads_nullified
    )


def test_convert_escaped_ablation_empties_gat(libmc, crt0):
    main = compile_module(
        """
        int h(int x) { return x; }
        int main() {
            int *p = &h;
            __putint(p(41) + 1);
            return 0;
        }
        """,
        "main.o",
    )
    objs = [crt0, main]
    default = om(objs, libmc, OMLevel.FULL)
    aggressive = om(objs, libmc, OMLevel.FULL, convert_escaped=True)
    assert run(default.executable).output == "42\n"
    assert run(aggressive.executable).output == "42\n"
    assert aggressive.stats.gat_bytes_after <= default.stats.gat_bytes_after


def test_scheduling_aligns_backward_branch_targets(libmc, crt0):
    main = compile_module(
        """
        int a[64];
        int main() {
            int i;
            int s = 0;
            for (i = 0; i < 64; i++) { s += a[i] + i; }
            __putint(s);
            return 0;
        }
        """,
        "main.o",
    )
    objs = [crt0, main]
    result = om(objs, libmc, OMLevel.FULL, schedule=True)
    assert run(result.executable).output == "2016\n"
    no_align = om(
        objs, libmc, OMLevel.FULL, schedule=True, align_loop_targets=False
    )
    assert run(no_align.executable).output == "2016\n"
