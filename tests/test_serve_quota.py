"""Unit coverage for the fleet's routing and tenant-isolation math:
the consistent-hash ring, per-tenant token-bucket quotas (driven by a
fake clock, so the arithmetic is pinned without sleeping), and the
start-time-fair weighted scheduler."""

import asyncio

import pytest

from repro.serve.quota import (
    FairScheduler,
    QuotaManager,
    TenantPolicy,
    parse_policy,
)
from repro.serve.router import HashRing, routing_key

# -- hash ring -----------------------------------------------------------------


def test_ring_is_deterministic_across_instances():
    a = HashRing(replicas=32)
    b = HashRing(replicas=32)
    for ring in (a, b):
        for slot in ("d0", "d1", "d2"):
            ring.add(slot)
    keys = [f"key-{i}" for i in range(200)]
    assert [a.node_for(k) for k in keys] == [b.node_for(k) for k in keys]


def test_ring_spreads_keys_over_all_nodes():
    ring = HashRing(replicas=64)
    for slot in ("d0", "d1", "d2", "d3"):
        ring.add(slot)
    owners = {ring.node_for(f"key-{i}") for i in range(500)}
    assert owners == {"d0", "d1", "d2", "d3"}


def test_removing_a_node_remaps_only_its_slice():
    ring = HashRing(replicas=64)
    for slot in ("d0", "d1", "d2"):
        ring.add(slot)
    keys = [f"key-{i}" for i in range(400)]
    before = {k: ring.node_for(k) for k in keys}
    ring.remove("d1")
    after = {k: ring.node_for(k) for k in keys}
    for key in keys:
        if before[key] != "d1":
            # The consistent-hashing property: losing one node moves
            # only that node's keys.
            assert after[key] == before[key]
        else:
            assert after[key] in ("d0", "d2")


def test_restored_node_reclaims_exactly_its_slice():
    ring = HashRing(replicas=64)
    for slot in ("d0", "d1"):
        ring.add(slot)
    keys = [f"key-{i}" for i in range(300)]
    before = {k: ring.node_for(k) for k in keys}
    ring.remove("d0")
    ring.add("d0")  # same slot name -> same virtual points
    assert {k: ring.node_for(k) for k in keys} == before


def test_empty_ring_routes_nowhere():
    ring = HashRing()
    assert ring.node_for("anything") is None
    ring.add("d0")
    ring.remove("d0")
    assert ring.node_for("anything") is None


def test_routing_key_covers_content_not_accounting():
    base = {"op": "run", "program": "compress", "scale": 2, "id": 1}
    same = dict(base, id=9, tenant="t1", request_id="c1:4")
    other = dict(base, scale=3)
    assert routing_key(base) == routing_key(same)
    assert routing_key(base) != routing_key(other)


# -- quota manager -------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def test_rate_quota_rejects_with_exact_retry_after():
    clock = FakeClock()
    quotas = QuotaManager(
        {"t1": TenantPolicy(rate=2.0, burst=1.0)}, clock=clock
    )
    assert quotas.try_admit("t1") is None  # burst token
    quotas.release("t1")
    hint = quotas.try_admit("t1")
    # Empty bucket at rate 2/s: the next token is 0.5 s away.
    assert hint == pytest.approx(0.5)
    clock.now += 0.5
    assert quotas.try_admit("t1") is None
    quotas.release("t1")


def test_burst_allows_a_batch_then_throttles():
    clock = FakeClock()
    quotas = QuotaManager(
        {"t1": TenantPolicy(rate=1.0, burst=3.0)}, clock=clock
    )
    for _ in range(3):
        assert quotas.try_admit("t1") is None
        quotas.release("t1")
    assert quotas.try_admit("t1") is not None
    snapshot = quotas.snapshot()["t1"]
    assert snapshot["admitted"] == 3
    assert snapshot["rejected_rate"] == 1


def test_inflight_ceiling_uses_default_hint():
    quotas = QuotaManager(
        {"t1": TenantPolicy(max_inflight=2)}, retry_after=0.07
    )
    assert quotas.try_admit("t1") is None
    assert quotas.try_admit("t1") is None
    assert quotas.try_admit("t1") == pytest.approx(0.07)
    quotas.release("t1")
    assert quotas.try_admit("t1") is None


def test_unknown_tenant_gets_the_default_policy():
    quotas = QuotaManager({"t1": TenantPolicy(rate=1.0)})
    # Default policy: no rate, no ceiling — always admitted.
    for _ in range(10):
        assert quotas.try_admit("anon") is None
    assert quotas.snapshot()["anon"]["admitted"] == 10


def test_release_without_admit_is_an_error():
    quotas = QuotaManager()
    with pytest.raises(RuntimeError):
        quotas.release("t1")


def test_parse_policy_round_trip():
    tenant, policy = parse_policy("t2:rate=2,burst=4,weight=0.5,inflight=8")
    assert tenant == "t2"
    assert policy == TenantPolicy(
        rate=2.0, burst=4.0, weight=0.5, max_inflight=8
    )


@pytest.mark.parametrize("spec", ["", "t1", "t1:bogus=1", "t1:rate"])
def test_parse_policy_rejects_malformed_specs(spec):
    with pytest.raises(ValueError):
        parse_policy(spec)


def test_policy_validation():
    with pytest.raises(ValueError):
        TenantPolicy(weight=0)
    with pytest.raises(ValueError):
        TenantPolicy(rate=-1)
    with pytest.raises(ValueError):
        TenantPolicy(burst=0.5)


# -- fair scheduler ------------------------------------------------------------


def _run(coro):
    return asyncio.run(coro)


def test_scheduler_grants_immediately_under_limit():
    async def body():
        sched = FairScheduler(2)
        await sched.acquire("a")
        await sched.acquire("b")
        assert sched.inflight == 2
        assert sched.backlog() == 0
        sched.release()
        sched.release()

    _run(body())


def test_scheduler_weighted_interleave():
    """With limit 1 and backlog from a weight-2 and a weight-1 tenant,
    grants follow virtual finish times: the heavy tenant gets two
    grants for each light grant."""

    async def body():
        weights = {"heavy": 2.0, "light": 1.0}
        sched = FairScheduler(1, weight_for=lambda t: weights.get(t, 1.0))
        order: list[str] = []

        async def work(tenant):
            await sched.acquire(tenant)
            order.append(tenant)
            sched.release()

        await sched.acquire("seed")  # force everyone below to queue
        tasks = [
            asyncio.ensure_future(work(t))
            for t in ["heavy", "light"] * 3
        ]
        await asyncio.sleep(0)  # let every waiter enqueue
        sched.release()  # start draining the backlog
        await asyncio.gather(*tasks)
        # Virtual finish times (heavy +0.5, light +1.0, enqueue-order
        # tie-break): while both have backlog the heavy tenant is
        # granted twice as often, then the light tail drains.
        assert order == ["heavy", "light", "heavy", "heavy", "light", "light"]
        while order and order[-1] == "light":
            order.pop()
        assert order.count("heavy") == 2 * order.count("light") + 1

    _run(body())


def test_scheduler_fifo_within_one_tenant():
    async def body():
        sched = FairScheduler(1)
        order = []

        async def work(tag):
            await sched.acquire("t")
            order.append(tag)
            sched.release()

        await sched.acquire("t")
        tasks = [asyncio.ensure_future(work(i)) for i in range(4)]
        await asyncio.sleep(0)
        sched.release()
        await asyncio.gather(*tasks)
        assert order == [0, 1, 2, 3]

    _run(body())


def test_scheduler_timeout_leaves_no_leak():
    async def body():
        sched = FairScheduler(1)
        await sched.acquire("a")
        with pytest.raises(asyncio.TimeoutError):
            await asyncio.wait_for(sched.acquire("b"), timeout=0.02)
        sched.release()
        # The cancelled waiter must not hold the slot or linger in the
        # backlog: a fresh acquire goes straight through.
        await asyncio.wait_for(sched.acquire("c"), timeout=1.0)
        assert sched.inflight == 1
        assert sched.backlog() == 0
        sched.release()

    _run(body())


def test_release_without_acquire_is_an_error():
    async def body():
        sched = FairScheduler(1)
        with pytest.raises(RuntimeError):
            sched.release()

    _run(body())
