"""Decaf compiler diagnostics: every class of source error reports cleanly.

The OO mirror of ``test_minicc_errors.py``: parser shape errors, class
table errors (inheritance, layout, overriding), and lowering errors all
surface as :class:`CompileError` with a usable message and location.
"""

import pytest

from repro.decafc import CompileError, compile_module


def expect_error(source, match):
    with pytest.raises(CompileError, match=match):
        compile_module(source, "t.o")


# -- parser ------------------------------------------------------------------


def test_method_without_body():
    expect_error("class C { int m(int a); }", "needs a body")


def test_extern_class_method_with_body():
    expect_error(
        "extern class C { int m(int a) { return a; } }",
        "must be a prototype",
    )


def test_too_many_parameters():
    expect_error(
        "int f(int a, int b, int c, int d, int e, int g) { return 0; }",
        "at most 5 parameters",
    )


def test_too_many_arguments():
    expect_error(
        """
        int g(int a) { return a; }
        int main() { return g(1, 2, 3, 4, 5, 6); }
        """,
        "at most 5 arguments",
    )


def test_void_variable():
    expect_error("void x;", "cannot be 'void'")


def test_void_field():
    expect_error("class C { void f; }", "fields cannot be 'void'")


def test_unterminated_class_body():
    expect_error("class C { int f;", "unterminated class body")


# -- class table -------------------------------------------------------------


def test_duplicate_class_definition():
    expect_error(
        "class C { int f; } class C { int g; }",
        "duplicate definition of class",
    )


def test_conflicting_extern_shape():
    expect_error(
        """
        extern class C { int f; int m(int a); }
        class C { int f; int g; int m(int a) { return a; } }
        """,
        "conflicting declarations of class",
    )


def test_unknown_base_class():
    expect_error("class C extends Ghost { int f; }", "unknown base class")


def test_inheritance_cycle():
    expect_error(
        """
        extern class A extends B { }
        extern class B extends A { }
        """,
        "inheritance cycle",
    )


def test_duplicate_field():
    expect_error("class C { int f; int f; }", "duplicate field")


def test_field_shadows_inherited():
    expect_error(
        """
        class A { int f; }
        class B extends A { int f; }
        """,
        "shadows an inherited field",
    )


def test_duplicate_method():
    expect_error(
        """
        class C {
            int m(int a) { return a; }
            int m(int a) { return a; }
        }
        """,
        "duplicate method",
    )


def test_field_and_method_clash():
    expect_error(
        "class C { int m; int m(int a) { return a; } }",
        "both a field and a method",
    )


def test_override_changes_arity():
    expect_error(
        """
        class A { int m(int a) { return a; } }
        class B extends A { int m(int a, int b) { return a + b; } }
        """,
        "changes parameter count",
    )


def test_reserved_builtin_name():
    expect_error("int print(int a) { return a; }", "reserved builtin")


def test_class_function_namespace_clash():
    expect_error(
        "class C { int f; } int C(int a) { return a; }",
        "both class and function",
    )


# -- lowering ----------------------------------------------------------------


def test_undeclared_name():
    expect_error("int f() { return mystery; }", "undeclared name")


def test_call_to_undeclared_function():
    expect_error("int f() { return nowhere(1); }", "undeclared function")


def test_wrong_function_arity():
    expect_error(
        "int g(int a, int b) { return a + b; } int f() { return g(1); }",
        "takes 2 arguments",
    )


def test_unknown_method():
    expect_error(
        """
        class C { int m(int a) { return a; } }
        int f() { C o = new C(); return o.zap(1); }
        """,
        "has no method",
    )


def test_wrong_method_arity():
    expect_error(
        """
        class C { int m(int a) { return a; } }
        int f() { C o = new C(); return o.m(1, 2); }
        """,
        "takes 1 arguments",
    )


def test_unknown_field():
    expect_error(
        """
        class C { int f; }
        int g() { C o = new C(); return o.ghost; }
        """,
        "has no field",
    )


def test_method_call_on_plain_int():
    expect_error("int f(int x) { return x.m(1); }", "non-object expression")


def test_this_outside_method():
    expect_error("int f() { return this; }", "'this' outside a method")


def test_unknown_class_in_new():
    expect_error("int f() { return new Ghost(); }", "unknown class")


def test_break_outside_loop():
    expect_error("int f() { break; return 0; }", "break outside")


def test_continue_outside_loop():
    expect_error("int f() { continue; return 0; }", "continue outside")


def test_duplicate_local():
    expect_error("int f() { int x; int x; return 0; }", "duplicate local")


def test_assign_to_array():
    expect_error("int a[4]; int f() { a = 0; return 0; }", "array")


def test_builtin_arity():
    expect_error("int f() { print(); return 0; }", "builtin")
    expect_error("int f() { print(1, 2); return 0; }", "builtin")


def test_error_carries_location():
    with pytest.raises(CompileError) as info:
        compile_module("int f() {\n  return oops;\n}", "t.o")
    assert info.value.line == 2


def test_valid_hierarchy_compiles():
    obj = compile_module(
        """
        class A { int f; int m(int a) { return a + f; } }
        class B extends A { int g; int m(int a) { return a - g; } }
        int main() { A o = new B(); return o.m(1); }
        """,
        "t.o",
    )
    assert obj.find_symbol("A.m") is not None
    assert obj.find_symbol("B.m") is not None
    assert obj.find_symbol("B.$vtable") is not None
