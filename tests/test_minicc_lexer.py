"""Lexer tests."""

import pytest
from hypothesis import given, strategies as st

from repro.minicc.errors import CompileError
from repro.minicc.lexer import Token, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


def test_keywords_and_identifiers():
    assert kinds("int x while whilex") == ["int", "ident", "while", "ident", "eof"]


def test_numbers_decimal_and_hex():
    assert values("0 42 0x10 0XFF") == [0, 42, 16, 255]


def test_char_literals():
    assert values("'a' '\\n' '\\0' '\\\\'") == [97, 10, 0, 92]


def test_unterminated_char_rejected():
    with pytest.raises(CompileError):
        tokenize("'a")


def test_maximal_munch_operators():
    assert kinds("a <<= b << c <= d < e")[:9] == [
        "ident", "<<=", "ident", "<<", "ident", "<=", "ident", "<", "ident",
    ]


def test_line_comments_skipped():
    assert kinds("a // comment\n b") == ["ident", "ident", "eof"]


def test_block_comments_track_lines():
    tokens = tokenize("/* one\ntwo */ x")
    assert tokens[0] == Token("ident", "x", 2)


def test_unterminated_block_comment_rejected():
    with pytest.raises(CompileError):
        tokenize("/* never ends")


def test_unexpected_character_reports_line():
    with pytest.raises(CompileError) as info:
        tokenize("x\n@")
    assert info.value.line == 2


def test_line_numbers_attached():
    tokens = tokenize("a\nb\n\nc")
    assert [t.line for t in tokens[:-1]] == [1, 2, 4]


@given(st.integers(0, 2**62))
def test_every_number_roundtrips(value):
    assert values(str(value)) == [value]


@given(
    st.lists(
        st.sampled_from(["foo", "bar", "int", "42", "+", "<<", "(", ")"]),
        max_size=12,
    )
)
def test_whitespace_insensitivity(parts):
    spaced = " ".join(parts)
    extra = "   ".join(parts)
    assert kinds(spaced) == kinds(extra)
