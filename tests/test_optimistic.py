"""Optimistic-compilation mode tests (the paper's §6 ``-G`` analog).

Variables under the threshold are addressed GP-relative directly at
compile time — no GAT entry, no address load — gambling on the final
layout.  When the program's data outgrows the GP window, the link must
*fail* (the paper: "if there are too many such variables the program
will not link, and recompilation with a lower threshold is required").
"""

import pytest

from repro.linker import LinkError, link
from repro.machine import run
from repro.minicc import Options, compile_module
from repro.objfile.relocations import RelocType
from repro.om import OMLevel, om_link

OPTIMISTIC = Options(small_data_threshold=64)

SMALL_PROGRAM = """
int a;
int b = 7;
int main() {
    a = b + 35;
    __putint(a);
    return 0;
}
"""


def test_small_data_emits_gprel_not_literal():
    obj = compile_module(SMALL_PROGRAM, "m.o", OPTIMISTIC)
    types = [r.type for r in obj.relocations]
    assert RelocType.GPREL16 in types
    data_literals = [
        r
        for r in obj.relocations
        if r.type is RelocType.LITERAL and r.symbol in ("a", "b")
    ]
    assert not data_literals


def test_optimistic_build_runs_correctly(libmc, crt0):
    obj = compile_module(SMALL_PROGRAM, "m.o", OPTIMISTIC)
    result = run(link([crt0, obj], [libmc]))
    assert result.output == "42\n"


def test_optimistic_shrinks_gat_and_loads(libmc, crt0):
    """The win is 1-for-1: address *loads* (memory operations that can
    miss) become address *computations*, and the GAT loses the entries."""
    conservative = compile_module(SMALL_PROGRAM, "m.o")
    optimistic = compile_module(SMALL_PROGRAM, "m.o", OPTIMISTIC)
    assert optimistic.lita_size < conservative.lita_size

    from repro.isa.encoding import decode_stream
    from repro.objfile.sections import SectionKind

    def loads(obj):
        return sum(
            1
            for i in decode_stream(bytes(obj.section(SectionKind.TEXT).data))
            if i.op.is_load
        )

    assert loads(optimistic) < loads(conservative)


def test_threshold_excludes_large_variables():
    source = "int big[100]; int main() { big[0] = 1; return big[0]; }"
    obj = compile_module(source, "m.o", OPTIMISTIC)
    assert any(
        r.type is RelocType.LITERAL and r.symbol == "big"
        for r in obj.relocations
    )


def test_broken_assumption_refuses_to_link(libmc, crt0):
    """With enough data between GP and the small variable, the 16-bit
    displacement cannot reach it and the link must fail loudly."""
    source = """
    int huge_a[8192];
    int huge_b[8192];
    int tiny;
    int main() {
        huge_a[0] = 1;
        huge_b[0] = 2;
        tiny = 3;
        __putint(tiny);
        return 0;
    }
    """
    obj = compile_module(source, "m.o", OPTIMISTIC)
    with pytest.raises(LinkError, match="displacement"):
        link([crt0, obj], [libmc])
    # Recompiling without the optimistic assumption links fine.
    safe = compile_module(source, "m.o")
    assert run(link([crt0, safe], [libmc])).output == "3\n"


def test_om_processes_optimistic_objects(libmc, crt0):
    obj = compile_module(SMALL_PROGRAM, "m.o", OPTIMISTIC)
    result = om_link([crt0, obj], [libmc], level=OMLevel.FULL)
    assert run(result.executable).output == "42\n"
