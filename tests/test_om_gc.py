"""Dead-procedure removal (OM extension) tests."""

from repro.linker import link
from repro.machine import run
from repro.minicc import compile_module
from repro.om import OMLevel, OMOptions, om_link


def build(crt0, *sources):
    return [crt0] + [
        compile_module(text, f"m{i}.o") for i, text in enumerate(sources)
    ]


def gc_link(objs, libmc, **extra):
    return om_link(
        objs,
        [libmc],
        level=OMLevel.FULL,
        options=OMOptions(remove_dead_procs=True, **extra),
    )


def test_unused_procedure_removed(libmc, crt0):
    objs = build(
        crt0,
        """
        int used(int x) { return x + 1; }
        int never_called(int x) { return x * 99; }
        int main() { __putint(used(41)); return 0; }
        """,
    )
    result = gc_link(objs, libmc)
    assert run(result.executable).output == "42\n"
    assert result.counters.procs_removed >= 1
    names = {p.name for p in result.executable.procs}
    assert "never_called" not in names
    assert "used" not in names or True  # used may be inlined-by-skip but must work


def test_unused_library_procs_removed(libmc, crt0):
    # Pulling one archive member brings its whole module; GC trims the
    # procedures of it that this program never reaches.
    objs = build(
        crt0,
        """
        extern int imin(int a, int b);
        int main() { __putint(imin(3, 9)); return 0; }
        """,
    )
    plain = om_link(objs, [libmc], level=OMLevel.FULL)
    trimmed = gc_link(objs, libmc)
    assert run(trimmed.executable).output == run(plain.executable).output == "3\n"
    assert trimmed.executable.text_size < plain.executable.text_size
    # math.o also defines gcd, ipow, isqrt... none reachable here.
    names = {p.name for p in trimmed.executable.procs}
    assert "gcd" not in names and "ipow" not in names
    assert "imin" in names


def test_address_taken_procs_survive(libmc, crt0):
    objs = build(
        crt0,
        """
        int cb(int x) { return x + 5; }
        int main() {
            int *f = &cb;
            __putint(f(10));
            return 0;
        }
        """,
    )
    result = gc_link(objs, libmc)
    assert run(result.executable).output == "15\n"
    assert "cb" in {p.name for p in result.executable.procs}


def test_function_pointer_in_data_survives(libmc, crt0):
    objs = build(
        crt0,
        """
        int handler(int x) { return x ^ 3; }
        int table[2] = {0, 0};
        int setup() { table[1] = &handler; return 0; }
        int main() {
            int *f;
            setup();
            f = table[1];
            __putint(f(1));
            return 0;
        }
        """,
    )
    result = gc_link(objs, libmc)
    assert run(result.executable).output == "2\n"


def test_jump_table_owner_survives_gc(libmc, crt0):
    objs = build(
        crt0,
        """
        int pick(int x) {
            switch (x) {
                case 0: return 5; case 1: return 6; case 2: return 7;
                case 3: return 8; case 4: return 9;
            }
            return -1;
        }
        int main() { __putint(pick(3)); return 0; }
        """,
    )
    result = gc_link(objs, libmc)
    assert run(result.executable).output == "8\n"


def test_gc_composes_with_scheduling(libmc, crt0):
    objs = build(
        crt0,
        """
        int dead(int x) { return x; }
        int main() {
            int i; int s = 0;
            for (i = 0; i < 10; i++) { s += i * 3; }
            __putint(s);
            return 0;
        }
        """,
    )
    result = gc_link(objs, libmc, schedule=True)
    assert run(result.executable).output == "135\n"
    assert "dead" not in {p.name for p in result.executable.procs}
