"""Text assembler tests, including running hand-written assembly."""

import pytest

from repro.isa.encoding import decode_stream
from repro.isa.textasm import AsmSyntaxError, assemble_text
from repro.linker import link
from repro.machine import run
from repro.objfile.relocations import LituseKind, RelocType
from repro.objfile.sections import SectionKind

HELLO = """
        .ent    main
main:   ldah    $gp, 0($pv)       !gpdisp:main
        lda     $gp, 0($gp)       !gpdisp_pair
        ldq     $t0, value($gp)   !literal
        ldq     $a0, 0($t0)       !lituse_base
        call_pal putint
        lda     $v0, 0($zero)
        ret     $zero, ($ra)
        .end    main

        .data
value:  .quad   1994
"""


def relocs(obj, rtype):
    return [r for r in obj.relocations if r.type is rtype]


def test_assembles_and_runs(crt0, libmc):
    obj = assemble_text(HELLO, "hello.o")
    result = run(link([crt0, obj], [libmc]))
    assert result.output == "1994\n"


def test_literal_and_lituse_linked():
    obj = assemble_text(HELLO)
    literal = relocs(obj, RelocType.LITERAL)[0]
    lituse = relocs(obj, RelocType.LITUSE)[0]
    assert literal.symbol == "value"
    assert lituse.addend == literal.offset
    assert lituse.extra == int(LituseKind.BASE)


def test_gpdisp_pair_linked():
    obj = assemble_text(HELLO)
    gpdisp = relocs(obj, RelocType.GPDISP)[0]
    assert gpdisp.offset == 0 and gpdisp.addend == 4 and gpdisp.extra == 0


def test_operate_register_and_literal_forms():
    source = """
        .ent f
f:      addq $a0, $a1, $v0
        addq $v0, 5, $v0
        sll  $v0, 2, $v0
        ret  $zero, ($ra)
        .end f
    """
    obj = assemble_text(source)
    instrs = decode_stream(bytes(obj.section(SectionKind.TEXT).data))
    assert instrs[0].lit is None
    assert instrs[1].lit == 5
    assert instrs[2].lit == 2


def test_branch_to_local_label_resolved():
    source = """
        .ent f
f:      lda  $t0, 3($zero)
loop:   subq $t0, 1, $t0
        bne  $t0, loop
        bis  $zero, $zero, $v0
        ret  $zero, ($ra)
        .end f
    """
    obj = assemble_text(source)
    instrs = decode_stream(bytes(obj.section(SectionKind.TEXT).data))
    bne = next(i for i in instrs if i.op.name == "bne")
    assert bne.disp == -2


def test_branch_to_extern_emits_braddr():
    source = """
        .ent f
f:      bsr $ra, helper
        ret $zero, ($ra)
        .end f
    """
    obj = assemble_text(source)
    braddr = relocs(obj, RelocType.BRADDR)
    assert braddr and braddr[0].symbol == "helper"


def test_data_symbols_and_comm():
    source = """
        .ent f
f:      ret $zero, ($ra)
        .end f
        .data
tab:    .quad 1, 2, 3
ptr:    .quad f
        .space 8
        .comm shared, 64, 16
    """
    obj = assemble_text(source)
    assert obj.section(SectionKind.DATA).size == 40
    ref = relocs(obj, RelocType.REFQUAD)[0]
    assert ref.symbol == "f"
    common = obj.find_symbol("shared")
    assert common.size == 64 and common.alignment == 16


def test_static_procedure():
    source = """
        .ent f, static
f:      ret $zero, ($ra)
        .end f
    """
    obj = assemble_text(source)
    assert obj.find_symbol("f").binding.value == "local"


def test_errors_report_line_numbers():
    with pytest.raises(AsmSyntaxError) as info:
        assemble_text("        .ent f\nf:      bogus $t0\n        .end f")
    assert info.value.line == 2
    with pytest.raises(AsmSyntaxError):
        assemble_text("        addq $t0, $t1, $t2")  # outside .ent
    with pytest.raises(AsmSyntaxError):
        assemble_text("        .ent f\nf:      addq $t0, 999, $t1\n        .end f")


def test_lituse_without_literal_rejected():
    with pytest.raises(AsmSyntaxError, match="no preceding literal"):
        assemble_text(
            "        .ent f\nf:      ldq $t1, 0($t0) !lituse_base\n        .end f"
        )


def test_unclosed_procedure_rejected():
    with pytest.raises(AsmSyntaxError, match="not closed"):
        assemble_text("        .ent f\nf:      ret $zero, ($ra)")
