"""Timing-model tests: the micro-architectural terms behind Figure 6."""

from repro.isa.instruction import Instruction
from repro.isa.registers import Reg
from repro.isa.timing import can_dual_issue, issue_class, result_latency
from repro.linker import link
from repro.machine import run
from repro.minicc import Options, compile_module

NOSCHED = Options(schedule=False)


def cycles_of(source, libmc, crt0, options=NOSCHED):
    exe = link([crt0, compile_module(source, "t.o", options)], [libmc])
    return run(exe)


# -- static model properties --------------------------------------------------


def test_issue_classes():
    assert issue_class(Instruction.mem("ldq", Reg.T0, Reg.SP, 0)) == "M"
    assert issue_class(Instruction.opr("addq", Reg.T0, Reg.T1, Reg.T2)) == "I"
    assert issue_class(Instruction.branch("br", Reg.ZERO, 0)) == "B"
    assert issue_class(Instruction.jump("ret", Reg.ZERO, Reg.RA)) == "B"
    assert issue_class(Instruction.pal(0)) == "B"


def test_dual_issue_pairs():
    load = Instruction.mem("ldq", Reg.T0, Reg.SP, 0)
    add = Instruction.opr("addq", Reg.T1, Reg.T2, Reg.T3)
    branch = Instruction.branch("bne", Reg.T4, 0)
    assert can_dual_issue(load, add)
    assert can_dual_issue(add, branch)
    assert can_dual_issue(load, branch)
    assert not can_dual_issue(add, add)
    assert not can_dual_issue(load, load)
    assert not can_dual_issue(branch, branch)


def test_latencies():
    assert result_latency(Instruction.mem("ldq", Reg.T0, Reg.SP, 0)) == 3
    assert result_latency(Instruction.opr("mulq", Reg.T0, Reg.T1, Reg.T2)) > 3
    assert result_latency(Instruction.opr("addq", Reg.T0, Reg.T1, Reg.T2)) == 1
    # LDA is address arithmetic, not a memory access.
    assert result_latency(Instruction.mem("lda", Reg.T0, Reg.SP, 0)) == 1


# -- end-to-end timing behaviour --------------------------------------------------


def test_dependent_muls_slower_than_independent(libmc, crt0):
    dependent = """
    int main() {
        int x = 3;
        int i;
        for (i = 0; i < 200; i++) { x = x * x; }
        __putint(x & 1);
        return 0;
    }
    """
    independent = """
    int main() {
        int a = 3;
        int b = 5;
        int c = 7;
        int i;
        int x = 0;
        for (i = 0; i < 200; i++) { x = x + a + b + c + i; }
        __putint(x & 1);
        return 0;
    }
    """
    slow = cycles_of(dependent, libmc, crt0)
    fast = cycles_of(independent, libmc, crt0)
    # Same order of instruction counts, very different CPIs: the chained
    # multiply pays its latency every iteration.
    assert slow.cpi > 2.0
    assert fast.cpi < 1.8


def test_scheduling_reduces_cycles(libmc, crt0):
    source = """
    int a[64];
    int b[64];
    int main() {
        int i;
        int s = 0;
        for (i = 0; i < 64; i++) {
            s = s + a[i] * 3 + b[i] * 5 + i;
        }
        __putint(s);
        return 0;
    }
    """
    unscheduled = cycles_of(source, libmc, crt0, NOSCHED)
    scheduled = cycles_of(source, libmc, crt0, Options(schedule=True))
    assert scheduled.output == unscheduled.output
    assert scheduled.instructions == unscheduled.instructions
    assert scheduled.cycles <= unscheduled.cycles


def test_load_use_stall_visible(libmc, crt0):
    """Back-to-back load-use pays the 2-cycle bubble; separating the
    pair with independent work hides it."""
    chained = """
    int a[256];
    int main() {
        int i;
        int s = 0;
        for (i = 0; i < 256; i++) { s = s ^ a[i]; }
        __putint(s);
        return 0;
    }
    """
    result = cycles_of(chained, libmc, crt0)
    # Unscheduled: each iteration has ldq immediately used by xor.
    assert result.cpi > 1.3
