"""The frontend dispatch seam: extension routing, grouping, CLI.

``repro.frontend`` is the one place that knows ``.mc`` means MiniC and
``.dcf`` means Decaf; everything downstream (oracle, serve workers,
benchsuite, toolchain CLI) routes through it.  These tests pin the
protocol: per-source dispatch in compile-each, per-language grouping in
compile-all, and cross-language linking of the results.
"""

import pytest

from repro.frontend import (
    DEFAULT_LANGUAGE,
    EXTENSIONS,
    LANGUAGES,
    compile_sources,
    frontend_for,
    language_for,
    object_name,
)
from repro.linker import link
from repro.machine import run

MINIC_SRC = "int shared_g = 5;\nint kern(int x) { return x * 2 + shared_g; }\n"
DECAF_SRC = """
extern int shared_g;
extern int kern(int x);
class Box {
    int v;
    int get() { return v + kern(shared_g); }
}
int main() {
    Box b = new Box();
    b.v = 100;
    print(b.get());
    return 0;
}
"""


def test_language_for_extensions():
    assert language_for("main.mc") == "minic"
    assert language_for("main.dcf") == "decaf"
    assert language_for("prog/main.dcf") == "decaf"
    assert language_for("README.txt") == DEFAULT_LANGUAGE
    assert language_for("README.txt", default="decaf") == "decaf"
    assert set(EXTENSIONS.values()) == set(LANGUAGES)


def test_object_name_replaces_extension():
    # Directory prefixes survive: the benchsuite names modules
    # "<program>/<file>.o" and provenance keys on that.
    assert object_name("main.mc") == "main.o"
    assert object_name("prog/main.dcf") == "prog/main.o"


def test_frontend_for_rejects_unknown_language():
    with pytest.raises(ValueError, match="unknown language"):
        frontend_for("fortran")


def test_compile_each_dispatches_per_source():
    objects = compile_sources(
        [("k.mc", MINIC_SRC), ("main.dcf", DECAF_SRC)], "each"
    )
    assert [obj.name for obj in objects] == ["k.o", "main.o"]
    decaf_obj = objects[1]
    assert decaf_obj.find_symbol("Box.get") is not None
    assert decaf_obj.find_symbol("Box.$vtable") is not None


def test_compile_all_single_language_is_one_unit():
    objects = compile_sources(
        [("a.mc", "int helper(int x) { return x + 1; }"),
         ("b.mc", "extern int helper(int x);"
                  "int main() { __putint(helper(41)); return 0; }")],
        "all",
    )
    assert [obj.name for obj in objects] == ["all.o"]


def test_compile_all_mixed_yields_one_unit_per_language():
    objects = compile_sources(
        [("k.mc", MINIC_SRC), ("main.dcf", DECAF_SRC)], "all"
    )
    assert sorted(obj.name for obj in objects) == ["all-decaf.o", "all-minic.o"]


def test_forced_language_overrides_extension():
    # language= compiles everything with one frontend regardless of
    # the filenames (the CLI's --lang).
    objects = compile_sources(
        [("weird.txt", "int main() { __putint(9); return 0; }")],
        "each",
        language="minic",
    )
    assert objects[0].find_symbol("main") is not None


@pytest.mark.parametrize("mode", ["each", "all"])
def test_mixed_language_program_links_and_runs(mode, crt0, libmc):
    objects = compile_sources(
        [("main.dcf", DECAF_SRC), ("k.mc", MINIC_SRC)], mode
    )
    exe = link([crt0] + objects, [libmc])
    out = [run(exe, backend=backend).output for backend in ("interp", "jit")]
    # Box.get() = 100 + kern(5) = 100 + 15
    assert out[0] == out[1] == "115\n"


def test_compile_sources_rejects_bad_inputs():
    with pytest.raises(ValueError, match="unknown mode"):
        compile_sources([("a.mc", "int main() { return 0; }")], "both")
    with pytest.raises(ValueError, match="unknown language"):
        compile_sources([("a.mc", "")], "each", language="cobol")
