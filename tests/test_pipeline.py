"""The dependency-aware parallel experiment pipeline."""

import pytest

from repro.cache import ArtifactCache
from repro.experiments import build, figures, pipeline


@pytest.fixture()
def disk_cache(tmp_path):
    cache = ArtifactCache(tmp_path)
    previous = build.configure_cache(cache)
    yield cache
    build.configure_cache(previous)


# -- planning ------------------------------------------------------------------


def test_plan_fig5_cells():
    plan = pipeline.plan_cells(["fig5"], programs=["eqntott"])
    assert plan.builds == (("eqntott", "all"), ("eqntott", "each"))
    assert set(plan.links) == {
        ("eqntott", "all", "om-full"),
        ("eqntott", "all", "om-simple"),
        ("eqntott", "each", "om-full"),
        ("eqntott", "each", "om-simple"),
    }
    assert plan.runs == ()


def test_plan_fig6_runs_imply_links():
    plan = pipeline.plan_cells(["fig6"], programs=["li"])
    assert set(plan.runs) <= set(plan.links)
    assert ("li", "each", "ld") in plan.runs


def test_plan_deduplicates_across_figures():
    one = pipeline.plan_cells(["fig3"], programs=["li"])
    both = pipeline.plan_cells(["fig3", "fig5"], programs=["li"])
    # fig3 already needs every cell fig5 needs.
    assert set(both.links) == set(one.links)


def test_plan_all_and_unknown():
    plan = pipeline.plan_cells(["all"], programs=["li"])
    assert ("li", "each", "om-full-sched") in plan.links  # from fig6/fig7
    with pytest.raises(ValueError):
        pipeline.plan_cells(["fig99"])


# -- inline execution ----------------------------------------------------------


def test_prewarm_cold_then_warm(disk_cache):
    cold = pipeline.prewarm(["fig5"], programs=["eqntott"], scale=1, jobs=1)
    assert cold.total_misses > 0
    assert set(cold.stages) == {"build", "link"}

    build.clear_caches()  # fresh process: only the disk survives
    warm = pipeline.prewarm(["fig5"], programs=["eqntott"], scale=1, jobs=1)
    assert warm.total_misses == 0
    assert warm.total_hits > 0

    keys, rows = figures.fig5_rows(programs=["eqntott"], scale=1)
    assert rows[-1]["program"] == "mean"


def test_prewarm_without_cache_degrades_to_inline():
    previous = build.configure_cache(None)
    try:
        metrics = pipeline.prewarm(["fig5"], programs=["eqntott"], scale=1, jobs=4)
        assert metrics.jobs == 1  # no disk cache to share artifacts through
        assert metrics.total_hits == 0 and metrics.total_misses == 0
    finally:
        build.configure_cache(previous)


def test_metrics_table_format(disk_cache):
    metrics = pipeline.prewarm(["gat"], programs=["eqntott"], scale=1, jobs=1)
    text = metrics.format()
    assert "stage" in text and "build" in text and "link" in text
    assert "pipeline: jobs=1" in text


def test_link_seconds_feed_fig7(disk_cache):
    metrics = pipeline.prewarm(["fig7"], programs=["eqntott"], scale=1, jobs=1)
    cells = set(metrics.link_seconds)
    assert ("eqntott", "each", "ld") in cells
    assert ("eqntott", "each", "om-full-sched") in cells
    keys, rows = figures.fig7_rows(
        programs=["eqntott"], scale=1, link_timings=metrics.link_seconds
    )
    row = rows[0]
    assert row["ld"] == metrics.link_seconds[("eqntott", "each", "ld")]
    assert row["om_sched"] == metrics.link_seconds[
        ("eqntott", "each", "om-full-sched")
    ]
    assert row["interproc_build"] > 0  # always measured inline


def test_plan_overhead_profiles_imply_links():
    plan = pipeline.plan_cells(["overhead"], programs=["li"])
    assert ("li", "each", "ld") in plan.profiles
    assert ("li", "each", "om-full") in plan.profiles
    assert set(plan.profiles) <= set(plan.links)
    assert plan.runs == ()


def test_prewarm_profiles_and_traces(disk_cache):
    from repro.obs.trace import TraceLog

    trace = TraceLog()
    metrics = pipeline.prewarm(
        ["overhead"], programs=["eqntott"], scale=1, jobs=1, trace=trace
    )
    assert "profile" in metrics.stages
    assert metrics.stages["profile"].tasks == 2  # ld + om-full
    assert "profile" in metrics.format()

    # Every executed cell became a span covering its measured interval.
    spans = [e for e in trace.events if e["ph"] == "X"]
    assert len(spans) == len(metrics.reports)
    stages = {e["args"]["stage"] for e in spans}
    assert stages == {"build", "link", "profile"}
    for span, report in zip(spans, metrics.reports):
        assert span["ts"] == report.start * 1e6
        # Epoch-scale floats round at the sub-microsecond level.
        assert span["dur"] == pytest.approx(report.seconds * 1e6, abs=1.0)
        assert span["pid"] == report.pid
    counters = [e for e in trace.events if e["ph"] == "C"]
    assert counters and counters[0]["args"] == {
        "hits": metrics.total_hits,
        "misses": metrics.total_misses,
    }

    keys, rows = figures.overhead_rows(programs=["eqntott"], scale=1)
    row = rows[0]
    assert row["ld_pv_loads"] > 0
    assert row["full_pv_loads"] == 0
    assert row["full_overhead_frac"] < row["ld_overhead_frac"]


def test_profile_variant_disk_cache_round_trip(disk_cache):
    first = build.profile_variant("eqntott", "each", "om-full", 1)
    build.clear_caches()
    second = build.profile_variant("eqntott", "each", "om-full", 1)
    assert disk_cache.stats.total_hits > 0
    assert second == first  # dataclass equality across the JSON round-trip


# -- parallel execution --------------------------------------------------------


def test_parallel_prewarm_matches_inline(disk_cache, tmp_path):
    """Worker processes share through the disk cache; the parent then
    serves every figure cell without a single compile or link."""
    metrics = pipeline.prewarm(["fig6"], programs=["eqntott"], scale=1, jobs=2)
    assert metrics.jobs == 2
    assert metrics.total_misses > 0  # the workers did the cold work

    disk_cache.stats.hits.clear()
    disk_cache.stats.misses.clear()
    keys, rows = figures.fig6_rows(programs=["eqntott"], scale=1)
    assert disk_cache.stats.total_misses == 0
    assert rows[-1]["each_full"] == pytest.approx(rows[0]["each_full"])

    # And the runs are identical to an uncached in-process evaluation.
    previous = build.configure_cache(None)
    try:
        __, fresh_rows = figures.fig6_rows(programs=["eqntott"], scale=1)
    finally:
        build.configure_cache(previous)
    assert rows == fresh_rows
