"""The dependency-aware parallel experiment pipeline."""

import pytest

from repro.cache import ArtifactCache
from repro.experiments import build, figures, pipeline


@pytest.fixture()
def disk_cache(tmp_path):
    cache = ArtifactCache(tmp_path)
    previous = build.configure_cache(cache)
    yield cache
    build.configure_cache(previous)


# -- planning ------------------------------------------------------------------


def test_plan_fig5_cells():
    plan = pipeline.plan_cells(["fig5"], programs=["eqntott"])
    assert plan.builds == (("eqntott", "all"), ("eqntott", "each"))
    assert set(plan.links) == {
        ("eqntott", "all", "om-full"),
        ("eqntott", "all", "om-simple"),
        ("eqntott", "each", "om-full"),
        ("eqntott", "each", "om-simple"),
    }
    assert plan.runs == ()


def test_plan_fig6_runs_imply_links():
    plan = pipeline.plan_cells(["fig6"], programs=["li"])
    assert set(plan.runs) <= set(plan.links)
    assert ("li", "each", "ld") in plan.runs


def test_plan_deduplicates_across_figures():
    one = pipeline.plan_cells(["fig3"], programs=["li"])
    both = pipeline.plan_cells(["fig3", "fig5"], programs=["li"])
    # fig3 already needs every cell fig5 needs.
    assert set(both.links) == set(one.links)


def test_plan_all_and_unknown():
    plan = pipeline.plan_cells(["all"], programs=["li"])
    assert ("li", "each", "om-full-sched") in plan.links  # from fig6/fig7
    with pytest.raises(ValueError):
        pipeline.plan_cells(["fig99"])


# -- inline execution ----------------------------------------------------------


def test_prewarm_cold_then_warm(disk_cache):
    cold = pipeline.prewarm(["fig5"], programs=["eqntott"], scale=1, jobs=1)
    assert cold.total_misses > 0
    assert set(cold.stages) == {"build", "link"}

    build.clear_caches()  # fresh process: only the disk survives
    warm = pipeline.prewarm(["fig5"], programs=["eqntott"], scale=1, jobs=1)
    assert warm.total_misses == 0
    assert warm.total_hits > 0

    keys, rows = figures.fig5_rows(programs=["eqntott"], scale=1)
    assert rows[-1]["program"] == "mean"


def test_prewarm_without_cache_degrades_to_inline():
    previous = build.configure_cache(None)
    try:
        metrics = pipeline.prewarm(["fig5"], programs=["eqntott"], scale=1, jobs=4)
        assert metrics.jobs == 1  # no disk cache to share artifacts through
        assert metrics.total_hits == 0 and metrics.total_misses == 0
    finally:
        build.configure_cache(previous)


def test_metrics_table_format(disk_cache):
    metrics = pipeline.prewarm(["gat"], programs=["eqntott"], scale=1, jobs=1)
    text = metrics.format()
    assert "stage" in text and "build" in text and "link" in text
    assert "pipeline: jobs=1" in text


def test_link_seconds_feed_fig7(disk_cache):
    metrics = pipeline.prewarm(["fig7"], programs=["eqntott"], scale=1, jobs=1)
    cells = set(metrics.link_seconds)
    assert ("eqntott", "each", "ld") in cells
    assert ("eqntott", "each", "om-full-sched") in cells
    keys, rows = figures.fig7_rows(
        programs=["eqntott"], scale=1, link_timings=metrics.link_seconds
    )
    row = rows[0]
    assert row["ld"] == metrics.link_seconds[("eqntott", "each", "ld")]
    assert row["om_sched"] == metrics.link_seconds[
        ("eqntott", "each", "om-full-sched")
    ]
    assert row["interproc_build"] > 0  # always measured inline


# -- parallel execution --------------------------------------------------------


def test_parallel_prewarm_matches_inline(disk_cache, tmp_path):
    """Worker processes share through the disk cache; the parent then
    serves every figure cell without a single compile or link."""
    metrics = pipeline.prewarm(["fig6"], programs=["eqntott"], scale=1, jobs=2)
    assert metrics.jobs == 2
    assert metrics.total_misses > 0  # the workers did the cold work

    disk_cache.stats.hits.clear()
    disk_cache.stats.misses.clear()
    keys, rows = figures.fig6_rows(programs=["eqntott"], scale=1)
    assert disk_cache.stats.total_misses == 0
    assert rows[-1]["each_full"] == pytest.approx(rows[0]["each_full"])

    # And the runs are identical to an uncached in-process evaluation.
    previous = build.configure_cache(None)
    try:
        __, fresh_rows = figures.fig6_rows(programs=["eqntott"], scale=1)
    finally:
        build.configure_cache(previous)
    assert rows == fresh_rows
