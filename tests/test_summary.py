"""Summary-command tests."""

from repro.experiments.summary import Claim, compute_summary, print_summary


def test_claim_verdicts():
    ok = Claim("x", "~1%", 1.0, 0.5, 2.0)
    out = Claim("y", "~1%", 9.0, 0.5, 2.0)
    assert ok.verdict == "ok"
    assert out.verdict == "OUT OF BAND"


def test_compute_summary_static_claims():
    claims = compute_summary(programs=["eqntott"], scale=1, include_dynamic=False)
    labels = [c.label for c in claims]
    assert any("fig3" in label for label in labels)
    assert any("gat" in label for label in labels)
    assert all(c.verdict == "ok" for c in claims if "fig3: OM-full" in c.label)


def test_print_summary_renders(capsys):
    print_summary([Claim("demo claim", "~5%", 4.2, 1, 10)])
    out = capsys.readouterr().out
    assert "demo claim" in out and "4.2%" in out and "ok" in out


def test_cli_summary(capsys):
    from repro.experiments.__main__ import main

    assert main(["summary", "--programs", "li", "--scale", "1"]) == 0
    out = capsys.readouterr().out
    assert "measured" in out and "verdict" in out
