"""Byte and longword memory operations, exercised via hand assembly."""

import pytest

from repro.isa.textasm import assemble_text
from repro.linker import link
from repro.machine import MachineError, run

WRITER = """
        .ent    main
main:   ldah    $gp, 0($pv)       !gpdisp:main
        lda     $gp, 0($gp)       !gpdisp_pair
        ldq     $t0, buf($gp)     !literal
        lda     $t1, 0x41($zero)
        stb     $t1, 0($t0)       !lituse_base
        lda     $t1, 0x42($zero)
        stb     $t1, 1($t0)
        ldbu    $a0, 0($t0)
        call_pal putchar
        ldbu    $a0, 1($t0)
        call_pal putchar
        lda     $t1, 10($zero)
        bis     $t1, $t1, $a0
        call_pal putchar
        call_pal halt
        .end    main

        .data
buf:    .quad   0
"""


def test_byte_store_and_load(libmc):
    obj = assemble_text(WRITER, "bytes.o")
    # main assembles its own startup; link without crt0 via custom entry
    exe = link([obj], [libmc], entry="main")
    for timed in (False, True):
        assert run(exe, timed=timed).output == "AB\n"


LONGWORD = """
        .ent    main
main:   ldah    $gp, 0($pv)       !gpdisp:main
        lda     $gp, 0($gp)       !gpdisp_pair
        ldq     $t0, buf($gp)     !literal
        ldah    $t1, -1($zero)    # 0xFFFF0000 sign-extended
        stl     $t1, 0($t0)       !lituse_base
        ldl     $a0, 0($t0)
        call_pal putint
        ldq     $a0, 0($t0)
        call_pal putint
        call_pal halt
        .end    main

        .data
buf:    .quad   0
"""


def test_longword_store_sign_extending_load(libmc):
    obj = assemble_text(LONGWORD, "long.o")
    exe = link([obj], [libmc], entry="main")
    result = run(exe, timed=False)
    values = [int(v) for v in result.output.split()]
    # ldl sign-extends the stored 32-bit pattern 0xFFFF0000.
    assert values[0] == -65536
    # The stq-visible quad holds only the low 32 bits (zero upper half).
    assert values[1] == 0xFFFF0000


def test_unaligned_longword_rejected(libmc):
    source = """
        .ent    main
main:   ldah    $gp, 0($pv)       !gpdisp:main
        lda     $gp, 0($gp)       !gpdisp_pair
        ldq     $t0, buf($gp)     !literal
        stl     $t1, 2($t0)       !lituse_base
        call_pal halt
        .end    main
        .data
buf:    .quad   0
    """
    exe = link([assemble_text(source, "bad.o")], [libmc], entry="main")
    with pytest.raises(MachineError, match="unaligned"):
        run(exe, timed=False)
