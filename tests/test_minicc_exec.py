"""End-to-end language semantics: compile, link, simulate, check output.

These tests pin MiniC's evaluation semantics through the entire
toolchain (compiler, assembler, linker, simulator), so a regression in
any layer shows up as a wrong number.
"""

import pytest

from tests.conftest import outputs


def run_ints(toolchain, body: str, prelude: str = "") -> list[int]:
    return outputs(toolchain(prelude + "\nint main() {" + body + "\nreturn 0; }"))


def test_arithmetic_and_precedence(toolchain):
    values = run_ints(
        toolchain,
        """
        __putint(2 + 3 * 4);
        __putint((2 + 3) * 4);
        __putint(10 - 7 - 2);
        __putint(-5);
        __putint(100 / 7);
        __putint(100 % 7);
        __putint(-100 / 7);
        __putint(-100 % 7);
        """,
    )
    assert values == [14, 20, 1, -5, 14, 2, -14, -2]


def test_64bit_wraparound(toolchain):
    values = run_ints(
        toolchain,
        """
        int big = 0x7FFFFFFFFFFFFFFF;
        __putint(big);
        __putint(big + 1);
        __putint(big * 2);
        """,
    )
    assert values == [2**63 - 1, -(2**63), -2]


def test_shifts_and_bitops(toolchain):
    values = run_ints(
        toolchain,
        """
        __putint(1 << 40);
        __putint(-16 >> 2);
        __putint(0xF0 & 0x3C);
        __putint(0xF0 | 0x0C);
        __putint(0xF0 ^ 0xFF);
        __putint(~0);
        """,
    )
    assert values == [1 << 40, -4, 0x30, 0xFC, 0x0F, -1]


def test_comparisons_produce_01(toolchain):
    values = run_ints(
        toolchain,
        """
        __putint(3 < 4); __putint(4 < 3); __putint(3 <= 3);
        __putint(5 > 2); __putint(5 >= 6);
        __putint(7 == 7); __putint(7 != 7);
        __putint(-1 < 1);
        """,
    )
    assert values == [1, 0, 1, 1, 0, 1, 0, 1]


def test_short_circuit_side_effects(toolchain):
    values = run_ints(
        toolchain,
        """
        int hits = 0;
        int bump_true = 0;
        if (1 || bump(&hits)) { bump_true = 1; }
        if (0 && bump(&hits)) { bump_true = 2; }
        __putint(hits);
        __putint(bump_true);
        __putint(!0);
        __putint(!42);
        """,
        prelude="int bump(int *p) { *p = *p + 1; return 1; }",
    )
    assert values == [0, 1, 1, 0]


def test_ternary(toolchain):
    values = run_ints(
        toolchain,
        """
        int x = 5;
        __putint(x > 3 ? 111 : 222);
        __putint(x > 9 ? 111 : 222);
        __putint((x > 3 ? 1 : 2) + (x > 9 ? 10 : 20));
        """,
    )
    assert values == [111, 222, 21]


def test_loops(toolchain):
    values = run_ints(
        toolchain,
        """
        int i;
        int s = 0;
        for (i = 1; i <= 10; i++) { s += i; }
        __putint(s);
        s = 0;
        i = 0;
        while (i < 5) { s = s * 10 + i; i++; }
        __putint(s);
        s = 0;
        do { s++; } while (s < 3);
        __putint(s);
        """,
    )
    assert values == [55, 1234, 3]


def test_break_continue(toolchain):
    values = run_ints(
        toolchain,
        """
        int i;
        int s = 0;
        for (i = 0; i < 10; i++) {
            if (i == 3) { continue; }
            if (i == 7) { break; }
            s = s * 10 + i;
        }
        __putint(s);
        """,
    )
    assert values == [12456]


def test_switch_dense_jump_table(toolchain):
    # 6 contiguous cases -> jump table path.
    values = run_ints(
        toolchain,
        """
        int i;
        for (i = 0; i < 8; i++) {
            switch (i) {
                case 0: __putint(100); break;
                case 1: __putint(101); break;
                case 2: __putint(102);
                case 3: __putint(103); break;
                case 4: __putint(104); break;
                case 5: __putint(105); break;
                default: __putint(-1);
            }
        }
        """,
    )
    assert values == [100, 101, 102, 103, 103, 104, 105, -1, -1]


def test_switch_sparse_compare_chain(toolchain):
    values = run_ints(
        toolchain,
        """
        int i;
        int probe[4];
        probe[0] = 5; probe[1] = 500; probe[2] = 5000; probe[3] = 7;
        for (i = 0; i < 4; i++) {
            switch (probe[i]) {
                case 5: __putint(1); break;
                case 500: __putint(2); break;
                case 5000: __putint(3); break;
                default: __putint(9);
            }
        }
        """,
    )
    assert values == [1, 2, 3, 9]


def test_arrays_and_pointers(toolchain):
    values = run_ints(
        toolchain,
        """
        int a[5];
        int *p = a;
        int i;
        for (i = 0; i < 5; i++) { a[i] = i * i; }
        __putint(p[3]);
        __putint(*p);
        p = &a[2];
        __putint(p[1]);
        *p = 77;
        __putint(a[2]);
        """,
    )
    assert values == [9, 0, 9, 77]


def test_globals_and_commons(toolchain):
    values = run_ints(
        toolchain,
        """
        counter = 5;
        table[2] = 42;
        counter += table[2];
        __putint(counter);
        __putint(initialized);
        """,
        prelude="int counter; int table[10]; int initialized = 31337;",
    )
    assert values == [47, 31337]


def test_recursion(toolchain):
    values = run_ints(
        toolchain,
        "__putint(fib(15));",
        prelude="int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }",
    )
    assert values == [610]


def test_function_pointers(toolchain):
    values = run_ints(
        toolchain,
        """
        int *op = &add3;
        __putint(op(10));
        op = &mul3;
        __putint(op(10));
        __putint(apply(&add3, 5));
        """,
        prelude="""
        int add3(int x) { return x + 3; }
        int mul3(int x) { return x * 3; }
        int apply(int *f, int x) { return f(x); }
        """,
    )
    assert values == [13, 30, 8]


def test_six_args_and_deep_expressions(toolchain):
    values = run_ints(
        toolchain,
        """
        __putint(sum6(1, 2, 3, 4, 5, 6));
        __putint(((1+2)*(3+4)-(5-6))*((7+8)/(2+1)));
        """,
        prelude="int sum6(int a,int b,int c,int d,int e,int f){return a+b+c+d+e+f;}",
    )
    assert values == [21, 110]


def test_stack_array_and_address_of_local(toolchain):
    values = run_ints(
        toolchain,
        """
        int buf[4];
        int x = 9;
        int *px = &x;
        buf[0] = 1; buf[1] = 2; buf[2] = 3; buf[3] = 4;
        *px = *px + buf[2];
        __putint(x);
        __putint(sum(buf, 4));
        """,
        prelude="int sum(int *a, int n){int i;int s=0;for(i=0;i<n;i++){s+=a[i];}return s;}",
    )
    assert values == [12, 10]


def test_stdlib_qsort_and_bsearch(toolchain):
    values = run_ints(
        toolchain,
        """
        int a[8];
        a[0]=5; a[1]=3; a[2]=8; a[3]=1; a[4]=9; a[5]=2; a[6]=7; a[7]=4;
        qsort64(a, 0, 7, &cmp_asc);
        __putint(is_sorted64(a, 8, &cmp_asc));
        __putint(bsearch64(a, 8, 7));
        __putint(bsearch64(a, 8, 6));
        """,
        prelude="""
        extern int qsort64(int *a, int lo, int hi, int *cmp);
        extern int cmp_asc(int a, int b);
        extern int is_sorted64(int *a, int n, int *cmp);
        extern int bsearch64(int *a, int n, int key);
        """,
    )
    # sorted: 1 2 3 4 5 7 8 9 -> 7 at index 5, 6 missing
    assert values == [1, 5, -1]


def test_stdlib_fixed_point(toolchain):
    values = run_ints(
        toolchain,
        """
        __putint(fx_mul(131072, 98304));        /* 2.0*1.5 = 3.0 */
        __putint(fx_div(196608, 131072));       /* 3.0/2.0 = 1.5 */
        __putint(fx_sqrt(262144) );             /* sqrt(4.0) = 2.0 */
        """,
        prelude="""
        extern int fx_mul(int a, int b);
        extern int fx_div(int a, int b);
        extern int fx_sqrt(int x);
        """,
    )
    assert values[0] == 3 * 65536
    assert values[1] == 98304
    assert abs(values[2] - 2 * 65536) <= 2


def test_putchar_output(toolchain):
    result = toolchain(
        "int main() { __putchar('h'); __putchar('i'); __putchar('\\n'); return 0; }"
    )
    assert result.output == "hi\n"


def test_compound_assignment_operators(toolchain):
    values = run_ints(
        toolchain,
        """
        int x = 100;
        x += 5; __putint(x);
        x -= 10; __putint(x);
        x *= 2; __putint(x);
        x /= 3; __putint(x);
        x %= 7; __putint(x);
        x <<= 4; __putint(x);
        x >>= 2; __putint(x);
        x |= 9; __putint(x);
        x &= 12; __putint(x);
        x ^= 5; __putint(x);
        """,
    )
    assert values == [105, 95, 190, 63, 0, 0, 0, 9, 8, 13]


def test_array_compound_assign_evaluates_index_once(toolchain):
    values = run_ints(
        toolchain,
        """
        int a[3];
        int calls = 0;
        a[0] = 10; a[1] = 20; a[2] = 30;
        a[next(&calls)] += 7;
        __putint(calls);
        __putint(a[0]);
        """,
        prelude="int next(int *p) { *p = *p + 1; return 0; }",
    )
    assert values == [1, 17]
