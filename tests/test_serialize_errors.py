"""Negative-path tests for serialization and resolution."""

import pytest

from repro.minicc import compile_module
from repro.objfile import ObjectFormatError, dump_object, load_object
from repro.objfile.serialize import FORMAT_VERSION, load_archive


def test_bad_version_rejected():
    obj = compile_module("int f() { return 1; }", "t.o")
    data = bytearray(dump_object(obj))
    data[4] = FORMAT_VERSION + 1
    with pytest.raises(ObjectFormatError, match="version"):
        load_object(bytes(data))


def test_truncated_object_fails_loudly():
    obj = compile_module("int g; int f() { return g; }", "t.o")
    data = dump_object(obj)
    with pytest.raises(Exception):
        load_object(data[: len(data) // 2])


def test_archive_magic_checked():
    with pytest.raises(ObjectFormatError, match="magic"):
        load_archive(b"NOPE" + bytes(64))


def test_object_magic_checked():
    with pytest.raises(ObjectFormatError, match="magic"):
        load_object(b"ELF\x7f" + bytes(64))


def test_roundtrip_stability_across_double_dump():
    obj = compile_module(
        "int t[4] = {1,2,3,4}; int f(int i) { return t[i]; }", "t.o"
    )
    once = dump_object(obj)
    twice = dump_object(load_object(once))
    assert once == twice
