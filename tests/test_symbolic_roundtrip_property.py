"""Property: OM's symbolic translation round-trips any compiled module.

For arbitrary generated programs (with and without compile-time
scheduling), translating to symbolic form and reassembling unchanged
must reproduce the module byte-for-byte, relocations included — the
losslessness the paper's "key idea" rests on.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.fuzz.generate import ProgramGen
from repro.minicc import Options, compile_module
from repro.objfile.sections import SectionKind
from repro.om.symbolic import reassemble_module, translate_module


def assert_roundtrip(obj):
    back, __ = reassemble_module(translate_module(obj))
    assert bytes(back.section(SectionKind.TEXT).data) == bytes(
        obj.section(SectionKind.TEXT).data
    )
    original = sorted(
        (r.type.value, r.offset, r.symbol or "", r.addend, r.extra)
        for r in obj.relocations
    )
    rebuilt = sorted(
        (r.type.value, r.offset, r.symbol or "", r.addend, r.extra)
        for r in back.relocations
    )
    assert original == rebuilt
    assert {s.name for s in obj.procedures()} == {
        s.name for s in back.procedures()
    }


@settings(max_examples=20,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(seed=st.integers(0, 10_000), schedule=st.booleans())
def test_random_modules_roundtrip(seed, schedule):
    main_src, helper_src = ProgramGen(seed).module_pair()
    options = Options(schedule=schedule)
    assert_roundtrip(compile_module(main_src, "main.o", options))
    assert_roundtrip(compile_module(helper_src, "helper.o", options))


def test_benchmark_modules_roundtrip():
    from repro.benchsuite import build_program

    for name in ("li", "sc", "nasa7"):
        for obj in build_program(name, "each", scale=1):
            assert_roundtrip(obj)
