"""Parser and semantic-analysis tests."""

import pytest

from repro.minicc import astnodes as ast
from repro.minicc.errors import CompileError
from repro.minicc.parser import parse
from repro.minicc.sema import analyze, merge_modules


def parse_one(source):
    return parse(source, "t.c")


def test_global_variable_forms():
    module = parse_one("int a; static int b[4]; int c = 7; int d[2] = {1, 2};")
    assert [g.name for g in module.globals] == ["a", "b", "c", "d"]
    assert module.globals[1].static and module.globals[1].array_size == 4
    assert module.globals[2].init == [7]
    assert module.globals[3].init == [1, 2]


def test_extern_declarations():
    module = parse_one("extern int g; extern int f(int a, int b);")
    assert module.globals[0].extern
    assert module.protos[0].params == ["a", "b"]


def test_function_definition():
    module = parse_one("static int f(int x) { return x + 1; }")
    func = module.functions[0]
    assert func.static and func.params == ["x"]
    assert isinstance(func.body.body[0], ast.Return)


def test_operator_precedence():
    module = parse_one("int f() { return 1 + 2 * 3 == 7 && 4 < 5; }")
    expr = module.functions[0].body.body[0].value
    assert expr.op == "&&"
    assert expr.left.op == "=="


def test_ternary_and_assignment():
    module = parse_one("int f(int x) { int y = x ? 1 : 2; y += 3; return y; }")
    body = module.functions[0].body.body
    assert isinstance(body[0].init, ast.Cond)
    assert body[1].expr.op == "+="


def test_incdec_forms():
    module = parse_one("int f(int x) { x++; ++x; x--; return x; }")
    stmts = module.functions[0].body.body
    assert not stmts[0].expr.is_prefix
    assert stmts[1].expr.is_prefix


def test_control_statements():
    source = """
    int f(int n) {
        int s = 0;
        int i;
        for (i = 0; i < n; i++) { s += i; }
        while (s > 100) { s -= 3; if (s == 50) { break; } }
        do { s++; } while (s < 10);
        return s;
    }
    """
    module = parse_one(source)
    kinds = [type(s).__name__ for s in module.functions[0].body.body]
    assert kinds == ["LocalDecl", "LocalDecl", "For", "While", "DoWhile", "Return"]


def test_switch_with_default_and_fallthrough():
    source = """
    int f(int x) {
        switch (x) {
            case 1: x = 10;
            case 2: x = 20; break;
            default: x = 0;
        }
        return x;
    }
    """
    switch = parse_one(source).functions[0].body.body[0]
    assert [value for value, __ in switch.cases] == [1, 2]
    assert switch.default is not None


def test_duplicate_case_rejected():
    with pytest.raises(CompileError):
        parse_one("int f(int x) { switch (x) { case 1: case 1: ; } return 0; }")


def test_call_and_index_postfix():
    module = parse_one("int f(int *a) { return g(a[1], 2)[3]; }")
    expr = module.functions[0].body.body[0].value
    assert isinstance(expr, ast.Index)
    assert isinstance(expr.base, ast.Call)


def test_address_of_and_deref():
    module = parse_one("int f(int x) { int *p = &x; return *p; }")
    body = module.functions[0].body.body
    assert body[0].init.op == "&"
    assert body[1].value.op == "*"


def test_too_many_params_rejected():
    with pytest.raises(CompileError):
        parse_one("int f(int a, int b, int c, int d, int e, int g, int h) { return 0; }")


def test_missing_semicolon_reports_location():
    with pytest.raises(CompileError) as info:
        parse_one("int f() { return 1 }")
    assert "expected" in str(info.value)


# -- sema ---------------------------------------------------------------------


def test_sema_duplicate_function_rejected():
    module = parse_one("int f() { return 0; } int f() { return 1; }")
    with pytest.raises(CompileError):
        analyze(module)


def test_sema_conflicting_arity_rejected():
    module = parse_one("extern int f(int a); int f(int a, int b) { return 0; }")
    with pytest.raises(CompileError):
        analyze(module)


def test_sema_variable_function_clash_rejected():
    module = parse_one("int f; int f() { return 0; }")
    with pytest.raises(CompileError):
        analyze(module)


def test_sema_reserved_builtin_rejected():
    module = parse_one("int __putint(int x) { return x; }")
    with pytest.raises(CompileError):
        analyze(module)


def test_merge_modules_collapses_externs():
    first = parse("extern int g; int f() { return g; }", "a.c")
    second = parse("int g = 3; int h() { return g; }", "b.c")
    merged = merge_modules([first, second], "all")
    definitions = [v for v in merged.globals if not v.extern]
    assert len(definitions) == 1 and definitions[0].init == [3]


def test_merge_modules_duplicate_definition_rejected():
    first = parse("int g = 1;", "a.c")
    second = parse("int g = 2;", "b.c")
    with pytest.raises(CompileError):
        merge_modules([first, second], "all")
