"""Code generator tests: the conservative 64-bit code model.

These check the *shape* of emitted code — the address loads, GP
bookkeeping, and relocations the paper's optimizations target.
"""

from repro.isa.encoding import decode_stream
from repro.isa.registers import Reg
from repro.minicc import Options, compile_all, compile_module
from repro.objfile.relocations import LituseKind, RelocType
from repro.objfile.sections import SectionKind
from repro.objfile.symbols import SymbolKind


def relocs_of(obj, rtype):
    return [r for r in obj.relocations if r.type is rtype]


def text_instrs(obj):
    return decode_stream(bytes(obj.section(SectionKind.TEXT).data))


NOSCHED = Options(schedule=False)


def test_global_read_emits_literal_and_lituse():
    obj = compile_module("int g; int f() { return g; }", "t.o", NOSCHED)
    literals = relocs_of(obj, RelocType.LITERAL)
    lituses = relocs_of(obj, RelocType.LITUSE)
    assert [r.symbol for r in literals] == ["g"]
    assert len(lituses) == 1
    assert lituses[0].addend == literals[0].offset
    assert lituses[0].extra == int(LituseKind.BASE)


def test_call_site_has_four_bookkeeping_instructions():
    """The paper: 'An unoptimized call site has four instructions: one
    to load the PV with the destination address, one for the JSR, and
    two to reset the GP after returning.'"""
    obj = compile_module(
        "extern int g(int x); int f(int x) { return g(x); }", "t.o", NOSCHED
    )
    instrs = text_instrs(obj)
    names = [i.op.name for i in instrs]
    jsr_at = names.index("jsr")
    assert instrs[jsr_at - 1].op.name == "ldq"  # PV load
    assert instrs[jsr_at - 1].ra == Reg.PV
    assert names[jsr_at + 1 : jsr_at + 3] == ["ldah", "lda"]  # GP reset
    jsr_lituse = [
        r
        for r in relocs_of(obj, RelocType.LITUSE)
        if r.extra == int(LituseKind.JSR)
    ]
    assert len(jsr_lituse) == 1
    assert relocs_of(obj, RelocType.HINT)[0].symbol == "g"


def test_entry_gpdisp_pair_at_start_without_scheduling():
    obj = compile_module("int g; int f() { return g; }", "t.o", NOSCHED)
    instrs = text_instrs(obj)
    assert instrs[0].op.name == "ldah" and instrs[0].ra == Reg.GP
    assert instrs[1].op.name == "lda" and instrs[1].ra == Reg.GP
    gpdisp = relocs_of(obj, RelocType.GPDISP)
    assert gpdisp[0].offset == 0
    assert gpdisp[0].extra == 0  # base point is the entry


def test_scheduling_moves_gp_setup_away_from_entry():
    """The paper's crucial observation: compile-time scheduling moves
    the GP-establishing pair away from procedure entry."""
    source = """
    int g;
    extern int callee(int a);
    int f(int x) { int y = x + 1; return callee(g + y); }
    """
    scheduled = compile_module(source, "t.o", Options(schedule=True))
    instrs = text_instrs(scheduled)
    first_two = {(i.op.name, i.ra) for i in instrs[:2]}
    assert (("ldah", int(Reg.GP)) in first_two) is False or (
        ("lda", int(Reg.GP)) not in first_two
    )
    # The pair is still identifiable through its GPDISP record.
    gpdisp = relocs_of(scheduled, RelocType.GPDISP)
    assert any(r.extra == 0 for r in gpdisp)


def test_leaf_without_globals_has_no_gp_setup():
    obj = compile_module("int f(int x) { return x * 2; }", "t.o", NOSCHED)
    sym = obj.find_symbol("f")
    assert sym.proc is not None and not sym.proc.uses_gp
    assert not relocs_of(obj, RelocType.GPDISP)
    assert not relocs_of(obj, RelocType.LITERAL)


def test_division_becomes_library_call():
    obj = compile_module("int f(int a, int b) { return a / b; }", "t.o", NOSCHED)
    assert any(
        r.symbol == "__divq" for r in relocs_of(obj, RelocType.LITERAL)
    )
    assert any(s.name == "__divq" and s.kind is SymbolKind.UNDEF for s in obj.symbols)


def test_static_function_called_with_bsr():
    source = """
    static int helper(int x) { return x + 1; }
    int f(int y) { return helper(y); }
    """
    obj = compile_module(source, "t.o", NOSCHED)
    instrs = text_instrs(obj)
    assert any(i.op.name == "bsr" for i in instrs)
    # No PV-load literal for the local call, no GP reset after it.
    assert not any(
        r.symbol == "helper" for r in relocs_of(obj, RelocType.LITERAL)
    )


def test_compile_all_optimizes_intra_unit_calls():
    sources = [
        ("a.c", "extern int ext(int x); int f(int y) { return helper(y) + ext(y); }"
                "extern int helper(int x);"),
        ("b.c", "int big; int helper(int x) { big = big + x; if (x > 3) { return big * x; } "
                "while (x < 10) { x = x + big; } return x; }"),
    ]
    obj = compile_all(sources, "all.o", NOSCHED)
    instrs = text_instrs(obj)
    assert any(i.op.name == "bsr" for i in instrs)  # helper via bsr
    assert any(i.op.name == "jsr" for i in instrs)  # ext via full convention
    literal_syms = {r.symbol for r in relocs_of(obj, RelocType.LITERAL)}
    assert "helper" not in literal_syms
    assert "ext" in literal_syms


def test_jump_table_emitted_for_dense_switch():
    source = """
    int f(int x) {
        switch (x) {
            case 0: return 10; case 1: return 11; case 2: return 12;
            case 3: return 13; case 4: return 14; case 5: return 15;
        }
        return -1;
    }
    """
    obj = compile_module(source, "t.o", NOSCHED)
    jmptab = relocs_of(obj, RelocType.JMPTAB)
    assert len(jmptab) == 1 and jmptab[0].addend == 6
    refquads = relocs_of(obj, RelocType.REFQUAD)
    assert len(refquads) == 6
    assert all(r.symbol == "f" for r in refquads)


def test_escaped_literal_flagged():
    # Array base consumed by s8addq: the literal's value escapes.
    obj = compile_module(
        "int a[10]; int f(int i) { return a[i]; }", "t.o", NOSCHED
    )
    literal = relocs_of(obj, RelocType.LITERAL)[0]
    assert literal.extra == 1
    # Scalar access does not escape.
    obj2 = compile_module("int g; int f() { return g; }", "t.o", NOSCHED)
    assert relocs_of(obj2, RelocType.LITERAL)[0].extra == 0


def test_function_address_literal_escapes():
    obj = compile_module(
        "int h(int x) { return x; } int f() { int *p = &h; return p(3); }",
        "t.o",
        NOSCHED,
    )
    literal = next(
        r for r in relocs_of(obj, RelocType.LITERAL) if r.symbol == "h"
    )
    assert literal.extra == 1


def test_param_homes_in_areg_for_leaf():
    obj = compile_module("int f(int x, int y) { return x + y; }", "t.o", NOSCHED)
    instrs = text_instrs(obj)
    # No frame, no saves, computes directly from a0/a1.
    assert len(instrs) <= 3
    assert instrs[-1].op.name == "ret"


def test_uninitialized_global_is_common():
    obj = compile_module("int big[100]; int small_one;", "t.o", NOSCHED)
    commons = [s for s in obj.symbols if s.kind is SymbolKind.COMMON]
    sizes = {s.name: s.size for s in commons}
    assert sizes == {"big": 800, "small_one": 8}
