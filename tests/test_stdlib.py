"""Standard-library correctness, checked against Python references."""

import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from tests.conftest import outputs


def call_lib(toolchain, prelude, body):
    return outputs(
        toolchain(prelude + "\nint main() {" + body + "\nreturn 0; }")
    )


MATH_PRELUDE = """
extern int iabs(int x);
extern int imin(int a, int b);
extern int imax(int a, int b);
extern int gcd(int a, int b);
extern int ipow(int base, int exp);
extern int isqrt(int x);
extern int ilog2(int x);
"""


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(x=st.integers(0, 2**40))
def test_isqrt_matches_math(x, toolchain):
    (got,) = call_lib(toolchain, MATH_PRELUDE, f"__putint(isqrt({x}));")
    assert got == (math.isqrt(x) if x > 0 else 0) or (x in (1, 2, 3) and got == 1)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(a=st.integers(-(2**30), 2**30), b=st.integers(-(2**30), 2**30))
def test_gcd_matches_math(a, b, toolchain):
    (got,) = call_lib(toolchain, MATH_PRELUDE, f"__putint(gcd({a}, {b}));")
    assert got == math.gcd(a, b)


def test_math_helpers(toolchain):
    values = call_lib(
        toolchain,
        MATH_PRELUDE,
        """
        __putint(iabs(-9)); __putint(imin(3, -4)); __putint(imax(3, -4));
        __putint(ipow(3, 7)); __putint(ilog2(1024)); __putint(isqrt(144));
        """,
    )
    assert values == [9, -4, 3, 3**7, 10, 12]


def test_fixed_point_sin_accuracy(toolchain):
    prelude = "extern int fx_sin(int x); extern int fx_cos(int x);"
    body = "".join(
        f"__putint(fx_sin({int(x * 65536)}));" for x in (0.0, 0.5, 1.0, -1.0, 2.5)
    )
    values = call_lib(toolchain, prelude, body)
    for got, x in zip(values, (0.0, 0.5, 1.0, -1.0, 2.5)):
        assert abs(got / 65536 - math.sin(x)) < 0.02, x


def test_fixed_point_exp_and_ln(toolchain):
    prelude = "extern int fx_exp(int x); extern int fx_ln(int x);"
    values = call_lib(
        toolchain,
        prelude,
        "__putint(fx_exp(65536)); __putint(fx_ln(131072));",
    )
    assert abs(values[0] / 65536 - math.e) < 0.01
    assert abs(values[1] / 65536 - math.log(2)) < 0.01


def test_popcount_and_bits(toolchain):
    prelude = (
        "extern int popcount64(int x); extern int parity64(int x);"
        "extern int bitrev16(int x); extern int clz64(int x);"
    )
    values = call_lib(
        toolchain,
        prelude,
        """
        __putint(popcount64(0xF0F0)); __putint(parity64(7));
        __putint(bitrev16(0x8001)); __putint(clz64(1));
        """,
    )
    assert values == [8, 1, 0x8001, 63]


def test_wstr_operations(toolchain):
    prelude = """
    extern int wstrlen(int *s); extern int wstrcmp(int *a, int *b);
    extern int wstrcpy(int *d, int *s); extern int wstrcat(int *d, int *s);
    extern int wstrchr(int *s, int c); extern int wstrrev(int *s);
    extern int wstr_from_int(int *d, int v); extern int print_line(int *s);
    """
    result = toolchain(
        prelude
        + """
    int buf[64];
    int num[24];
    int main() {
        __putint(wstrlen("hello"));
        __putint(wstrcmp("abc", "abd"));
        __putint(wstrcmp("same", "same"));
        wstrcpy(buf, "fore");
        wstrcat(buf, "ground");
        print_line(buf);
        __putint(wstrchr("finder", 'd'));
        wstrrev(buf);
        print_line(buf);
        wstr_from_int(num, -4096);
        print_line(num);
        return 0;
    }
    """
    )
    lines = result.output.splitlines()
    assert lines[0] == "5"
    assert lines[1] == "-1"
    assert lines[2] == "0"
    assert lines[3] == "foreground"
    assert lines[4] == "3"
    assert lines[5] == "dnuorgerof"
    assert lines[6] == "-4096"


def test_ring_buffer(toolchain):
    prelude = """
    extern int ring_reset(); extern int ring_push(int v);
    extern int ring_pop(); extern int ring_size(); extern int ring_peek();
    """
    values = call_lib(
        toolchain,
        prelude,
        """
        int i;
        ring_reset();
        for (i = 1; i <= 5; i++) { ring_push(i * 10); }
        __putint(ring_size());
        __putint(ring_peek());
        __putint(ring_pop());
        __putint(ring_pop());
        __putint(ring_size());
        """,
    )
    assert values == [5, 10, 10, 20, 3]


def test_stats_package(toolchain):
    prelude = """
    extern int stat_mean(int *a, int n); extern int stat_variance(int *a, int n);
    extern int stat_min(int *a, int n); extern int stat_max(int *a, int n);
    extern int stat_histogram(int *a, int n, int *bins, int nb, int lo, int w);
    """
    values = call_lib(
        toolchain,
        prelude,
        """
        int a[6];
        int bins[4];
        a[0]=2; a[1]=4; a[2]=4; a[3]=4; a[4]=5; a[5]=5;
        __putint(stat_mean(a, 6));
        __putint(stat_variance(a, 6));
        __putint(stat_min(a, 6));
        __putint(stat_max(a, 6));
        __putint(stat_histogram(a, 6, bins, 4, 0, 2));
        __putint(bins[1]);
        __putint(bins[2]);
        """,
    )
    # mean 4, variance (4+0+0+0+1+1)/6 = 1 (truncated)
    assert values == [4, 1, 2, 5, 6, 1, 5]


def test_memcpy_and_sum(toolchain):
    prelude = """
    extern int memcpy64(int *d, int *s, int n);
    extern int memsum64(int *p, int n);
    extern int memrev64(int *p, int n);
    extern int memcmp64(int *a, int *b, int n);
    """
    values = call_lib(
        toolchain,
        prelude,
        """
        int a[4];
        int b[4];
        a[0]=1; a[1]=2; a[2]=3; a[3]=4;
        memcpy64(b, a, 4);
        __putint(memcmp64(a, b, 4));
        memrev64(b, 4);
        __putint(b[0]);
        __putint(memsum64(b, 4));
        __putint(memcmp64(a, b, 4));
        """,
    )
    assert values == [0, 4, 10, -1]
