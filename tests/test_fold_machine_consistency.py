"""Property test: the compiler's constant folder agrees with the machine.

Compile-time evaluation (``opt._fold_bin``) and run-time evaluation
(the simulator's operate handlers) must implement identical 64-bit
semantics — otherwise compile-all (which folds more, after inlining)
would diverge from compile-each, breaking the suite's bit-identical
output guarantee.
"""

from hypothesis import given, strategies as st

from repro.machine.cpu import _OPERATE_CODE, _operate
from repro.minicc.opt import _fold_bin, _to_signed

_MASK = (1 << 64) - 1

#: IR op -> machine operate mnemonic (the div/rem pair is a library
#: call, checked separately below).
_DIRECT = {
    "add": "addq",
    "sub": "subq",
    "mul": "mulq",
    "and": "and",
    "or": "bis",
    "xor": "xor",
    "cmpeq": "cmpeq",
    "cmplt": "cmplt",
    "cmple": "cmple",
    "cmpult": "cmpult",
    "cmpule": "cmpule",
    "s8add": "s8addq",
}

_values = st.integers(-(1 << 63), (1 << 63) - 1)


@given(op=st.sampled_from(sorted(_DIRECT)), a=_values, b=_values)
def test_fold_matches_operate(op, a, b):
    folded = _fold_bin(op, a, b)
    machine = _operate(
        _OPERATE_CODE[_DIRECT[op]], a & _MASK, b & _MASK, 0
    )
    assert folded == _to_signed(machine)


@given(a=_values, b=_values, op=st.sampled_from(["sll", "srl", "sra"]))
def test_shift_fold_matches_machine(a, b, op):
    folded = _fold_bin(op, a, b)
    machine = _operate(_OPERATE_CODE[op], a & _MASK, b & _MASK, 0)
    assert folded == _to_signed(machine)


def _py_divq(a, b):
    """Reference semantics of the __divq library routine (C-style
    truncation toward zero)."""
    if b == 0:
        return 0
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


@given(a=st.integers(-(1 << 62), (1 << 62) - 1), b=st.integers(-(1 << 62), (1 << 62) - 1))
def test_division_fold_matches_library_reference(a, b):
    folded_div = _fold_bin("div", a, b)
    folded_rem = _fold_bin("rem", a, b)
    if b == 0:
        assert folded_div is None and folded_rem is None
        return
    assert folded_div == _py_divq(a, b)
    assert folded_rem == a - b * _py_divq(a, b)


@given(a=_values, b=_values)
def test_simulated_divq_matches_fold(a, b, libmc, crt0):
    """Run the actual __divq library routine on the simulator for a
    pinned set of operands drawn by hypothesis (cheap: tiny program)."""
    # Keep the run count sane: exercise only a few magnitudes.
    from hypothesis import assume

    assume(abs(a) < (1 << 62) and 0 < abs(b) < (1 << 20))
    from repro.linker import link
    from repro.machine import run
    from repro.minicc import compile_module

    source = f"""
    int main() {{
        __putint({a} / {b});
        __putint({a} % {b});
        return 0;
    }}
    """
    # Constant folding would evaluate at compile time; defeat it with
    # volatile-ish globals.
    source = f"""
    int va = {a};
    int vb = {b};
    int main() {{
        __putint(va / vb);
        __putint(va % vb);
        return 0;
    }}
    """
    exe = link([crt0, compile_module(source, "m.o")], [libmc])
    got = [int(x) for x in run(exe, timed=False).output.split()]
    assert got == [_fold_bin("div", a, b), _fold_bin("rem", a, b)]
