"""Weighted call graph and Pettis-Hansen placement."""

from repro.isa.instruction import Instruction
from repro.layout.callgraph import (
    build_call_graph,
    edge_weights,
    static_proc_weights,
)
from repro.layout.reorder import may_move, pettis_hansen_order
from repro.minicc import compile_module
from repro.minicc.mcode import MInstr
from repro.om.symbolic import SymbolicProc, translate_module

SOURCE = """
int helper(int x) { return x + 1; }
int twice(int x) { return helper(helper(x)); }
int main() {
    __putint(twice(1));
    __putint(helper(2));
    return 0;
}
"""


def _modules():
    return [translate_module(compile_module(SOURCE, "m.o"))]


def test_call_graph_sites_and_multiplicity():
    graph = build_call_graph(_modules())
    names = [name for __, name in graph.procs]
    assert "main" in names and "twice" in names and "helper" in names
    # helper is called twice from twice and once from main.
    assert graph.multiplicity[("twice", "helper")] == 2
    assert graph.multiplicity[("main", "helper")] == 1
    assert graph.multiplicity[("main", "twice")] == 1
    for site in graph.sites:
        assert site.jsr.lituse is not None
        assert site.load.literal is not None
        assert site.load.literal[0] == site.callee.name


def test_static_weights_reflect_in_degree():
    graph = build_call_graph(_modules())
    weights = static_proc_weights(graph)
    # helper: 1 + 3 call sites; twice: 1 + 1; main: 1 + 0.
    assert weights["helper"] == 4.0
    assert weights["twice"] == 2.0
    assert weights["main"] == 1.0


def test_edge_weights_drop_self_edges():
    graph = build_call_graph(_modules())
    graph.multiplicity[("helper", "helper")] = 5
    weights = edge_weights(graph, static_proc_weights(graph))
    assert ("helper", "helper") not in weights
    assert weights[("twice", "helper")] > weights[("main", "twice")]


def test_pettis_hansen_places_hot_pair_adjacent():
    edges = {("a", "b"): 10.0, ("b", "c"): 1.0, ("c", "d"): 5.0}
    weights = {"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0}
    order = pettis_hansen_order(["a", "b", "c", "d"], edges, weights)
    assert abs(order.index("a") - order.index("b")) == 1
    assert abs(order.index("c") - order.index("d")) == 1


def test_pettis_hansen_entry_chain_first():
    edges = {("hot", "hotter"): 100.0}
    weights = {"entry": 0.5, "hot": 50.0, "hotter": 50.0}
    order = pettis_hansen_order(
        ["entry", "hot", "hotter"], edges, weights, entry="entry"
    )
    assert order[0] == "entry"


def test_pettis_hansen_deterministic():
    edges = {("a", "b"): 1.0, ("c", "d"): 1.0, ("e", "f"): 1.0}
    weights = {name: 1.0 for name in "abcdef"}
    nodes = list("fedcba")
    first = pettis_hansen_order(nodes, dict(edges), dict(weights))
    second = pettis_hansen_order(nodes, dict(edges), dict(weights))
    assert first == second


def test_may_move_requires_unconditional_tail():
    ret = SymbolicProc("r", items=[MInstr(Instruction.jump("ret", 31, 26))])
    assert may_move(ret)
    fallthrough = SymbolicProc("f", items=[MInstr(Instruction.nop())])
    assert not may_move(fallthrough)
    cond = SymbolicProc(
        "c", items=[MInstr(Instruction.branch("beq", 0, 0))]
    )
    assert not may_move(cond)
    empty = SymbolicProc("e", items=[])
    assert not may_move(empty)


def test_real_procs_are_movable():
    module = _modules()[0]
    for proc in module.procs:
        assert may_move(proc), proc.name
