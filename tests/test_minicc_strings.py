"""String literal tests (word-per-character arrays)."""

import pytest

from repro.minicc.errors import CompileError
from repro.minicc.lexer import tokenize
from repro.om import OMLevel, om_link
from repro.linker import link
from repro.machine import run
from repro.minicc import compile_module


def test_lexer_string_token():
    tokens = tokenize('"hi\\n"')
    assert tokens[0].kind == "str" and tokens[0].value == "hi\n"


def test_lexer_rejects_unterminated():
    with pytest.raises(CompileError):
        tokenize('"oops')
    with pytest.raises(CompileError):
        tokenize('"line\nbreak"')


def test_print_str_via_stdlib(toolchain):
    result = toolchain(
        """
        extern int print_line(int *s);
        int main() {
            print_line("hello, axp");
            return 0;
        }
        """
    )
    assert result.output == "hello, axp\n"


def test_string_indexing_and_dedup(toolchain):
    result = toolchain(
        """
        extern int print_str(int *s);
        int main() {
            int *a = "abc";
            int *b = "abc";
            __putint(a == b);       /* pooled: same address */
            __putint(a[1]);          /* 'b' */
            __putint(a[3]);          /* terminator */
            return 0;
        }
        """
    )
    assert result.output.split() == ["1", "98", "0"]


def test_strings_survive_om(libmc, crt0):
    obj = compile_module(
        """
        extern int print_line(int *s);
        int main() {
            print_line("optimized");
            return 0;
        }
        """,
        "m.o",
    )
    base = run(link([crt0, obj], [libmc]))
    full = om_link([crt0, obj], [libmc], level=OMLevel.FULL)
    assert run(full.executable).output == base.output == "optimized\n"
