"""Toolchain CLI integration tests (the real-toolchain workflow)."""

import pickle

import pytest

from repro.benchsuite import build_stdlib
from repro.objfile.fileio import save_archive
from repro.toolchain import main

MAIN_SRC = """
extern int helper(int x);
int main() {
    __putint(helper(20) + 2);
    return 0;
}
"""

HELPER_SRC = "int helper(int x) { return x * 2; }"


@pytest.fixture()
def workspace(tmp_path):
    (tmp_path / "main.mc").write_text(MAIN_SRC)
    (tmp_path / "helper.mc").write_text(HELPER_SRC)
    save_archive(build_stdlib(), tmp_path / "libmc.a")
    return tmp_path


def test_compile_link_run(workspace, capsys):
    main(["cc", str(workspace / "main.mc")])
    main(["cc", str(workspace / "helper.mc")])
    main(
        [
            "ld",
            str(workspace / "main.o"),
            str(workspace / "helper.o"),
            "-o",
            str(workspace / "prog.exe"),
            "-l",
            str(workspace / "libmc.a"),
        ]
    )
    capsys.readouterr()
    main(["run", str(workspace / "prog.exe")])
    assert capsys.readouterr().out == "42\n"


def test_om_link_smaller_and_same_output(workspace, capsys):
    main(["cc", str(workspace / "main.mc")])
    main(["cc", str(workspace / "helper.mc")])
    objects = [str(workspace / "main.o"), str(workspace / "helper.o")]
    lib = ["-l", str(workspace / "libmc.a")]
    main(["ld", *objects, "-o", str(workspace / "a.exe"), *lib])
    main(["om", *objects, "-o", str(workspace / "b.exe"), *lib])
    capsys.readouterr()
    main(["run", str(workspace / "a.exe")])
    base_out = capsys.readouterr().out
    main(["run", str(workspace / "b.exe")])
    assert capsys.readouterr().out == base_out == "42\n"

    a = pickle.loads((workspace / "a.exe").read_bytes())
    b = pickle.loads((workspace / "b.exe").read_bytes())
    assert b.text_size < a.text_size


def test_compile_all_mode(workspace, capsys):
    main(
        [
            "cc",
            "-all",
            str(workspace / "main.mc"),
            str(workspace / "helper.mc"),
            "-o",
            str(workspace / "unit.o"),
        ]
    )
    main(
        [
            "ld",
            str(workspace / "unit.o"),
            "-o",
            str(workspace / "all.exe"),
            "-l",
            str(workspace / "libmc.a"),
        ]
    )
    capsys.readouterr()
    main(["run", str(workspace / "all.exe")])
    assert capsys.readouterr().out == "42\n"


def test_ar_and_demand_pull(workspace, tmp_path, capsys):
    main(["cc", str(workspace / "helper.mc")])
    main(["ar", str(tmp_path / "libh.a"), str(workspace / "helper.o")])
    main(["cc", str(workspace / "main.mc")])
    main(
        [
            "ld",
            str(workspace / "main.o"),
            "-o",
            str(workspace / "prog.exe"),
            "-l",
            str(tmp_path / "libh.a"),
            "-l",
            str(workspace / "libmc.a"),
        ]
    )
    capsys.readouterr()
    main(["run", str(workspace / "prog.exe")])
    assert capsys.readouterr().out == "42\n"


def test_dis_object_and_executable(workspace, capsys):
    main(["cc", str(workspace / "helper.mc")])
    capsys.readouterr()
    main(["dis", str(workspace / "helper.o")])
    out = capsys.readouterr().out
    assert "sll" in out or "addq" in out or "mulq" in out

    main(["cc", str(workspace / "main.mc")])
    main(
        [
            "ld",
            str(workspace / "main.o"),
            str(workspace / "helper.o"),
            "-o",
            str(workspace / "p.exe"),
            "-l",
            str(workspace / "libmc.a"),
        ]
    )
    capsys.readouterr()
    main(["dis", str(workspace / "p.exe")])
    out = capsys.readouterr().out
    assert "0x012000" in out  # text base addresses


def test_om_gc_flag(workspace, capsys):
    main(["cc", str(workspace / "main.mc")])
    main(["cc", str(workspace / "helper.mc")])
    main(
        [
            "om",
            str(workspace / "main.o"),
            str(workspace / "helper.o"),
            "-o",
            str(workspace / "gc.exe"),
            "-l",
            str(workspace / "libmc.a"),
            "-gc",
            "-sched",
        ]
    )
    capsys.readouterr()
    main(["run", str(workspace / "gc.exe")])
    assert capsys.readouterr().out == "42\n"


DECAF_SRC = """
extern int helper(int x);
class Adder {
    int bias;
    int apply(int x) { return helper(x) + bias; }
}
int main() {
    Adder a = new Adder();
    a.bias = 2;
    print(a.apply(20));
    return 0;
}
"""


def test_decaf_source_dispatches_by_extension(workspace, capsys):
    (workspace / "dmain.dcf").write_text(DECAF_SRC)
    main(["cc", str(workspace / "dmain.dcf")])
    main(["cc", str(workspace / "helper.mc")])
    main(
        [
            "om",
            str(workspace / "dmain.o"),
            str(workspace / "helper.o"),
            "-o",
            str(workspace / "d.exe"),
            "-l",
            str(workspace / "libmc.a"),
        ]
    )
    capsys.readouterr()
    main(["run", str(workspace / "d.exe")])
    assert capsys.readouterr().out == "42\n"


def test_lang_flag_overrides_extension(workspace, capsys):
    # Decaf source under a .mc name compiles when --lang forces it.
    (workspace / "forced.mc").write_text(DECAF_SRC)
    main(["cc", "--lang", "decaf", str(workspace / "forced.mc")])
    main(["cc", str(workspace / "helper.mc")])
    main(
        [
            "ld",
            str(workspace / "forced.o"),
            str(workspace / "helper.o"),
            "-o",
            str(workspace / "f.exe"),
            "-l",
            str(workspace / "libmc.a"),
        ]
    )
    capsys.readouterr()
    main(["run", str(workspace / "f.exe")])
    assert capsys.readouterr().out == "42\n"


def test_mixed_language_compile_all_is_rejected(workspace):
    (workspace / "dmain.dcf").write_text(DECAF_SRC)
    with pytest.raises(SystemExit, match="mixed languages"):
        main(
            [
                "cc",
                "-all",
                str(workspace / "dmain.dcf"),
                str(workspace / "helper.mc"),
                "-o",
                str(workspace / "unit.o"),
            ]
        )
