"""The differential oracle: full matrix, invariants, and caching."""

import pytest

from repro.cache import ArtifactCache
from repro.fuzz.generate import GenConfig, GeneratedProgram, generate_program
from repro.fuzz.oracle import (
    MODES,
    VARIANTS,
    divergence_predicate,
    evaluate_program,
)
from repro.obs.provenance import ACTIONS


@pytest.fixture(scope="module")
def report():
    return evaluate_program(generate_program(0))


def test_matrix_is_complete_and_agrees(report):
    assert not report.diverged, report.summary()
    assert set(report.cells) == {
        f"{mode}/{variant}" for mode in MODES for variant in VARIANTS
    }
    outputs = {cell.output for cell in report.cells.values()}
    assert len(outputs) == 1


def test_instruction_counts_are_monotone(report):
    for mode in MODES:
        ld = report.cells[f"{mode}/ld"].instructions
        simple = report.cells[f"{mode}/om-simple"].instructions
        full = report.cells[f"{mode}/om-full"].instructions
        assert simple <= ld
        assert full <= simple
        assert report.cells[f"{mode}/om-full-sched"].instructions <= simple
        assert report.cells[f"{mode}/om-full-gc"].instructions <= full


def test_coverage_pairs_use_known_actions(report):
    assert report.coverage
    assert {action for action, __ in report.coverage} <= set(ACTIONS)
    # The ld cells carry no provenance; OM cells do.
    assert report.cells["each/ld"].coverage == ()
    assert report.cells["each/om-full"].coverage


def test_cache_roundtrip_is_exact(tmp_path):
    program = generate_program(1)
    cache = ArtifactCache(tmp_path / "cache")
    cold = evaluate_program(program, cache=cache)
    hits0, misses0 = cache.stats.snapshot()
    assert misses0 > 0
    warm = evaluate_program(program, cache=cache)
    hits1, misses1 = cache.stats.snapshot()
    assert misses1 == misses0, "warm run must not miss"
    assert hits1 > hits0
    assert warm.cells == cold.cells
    assert warm.coverage == cold.coverage


def test_broken_program_reports_build_error():
    program = GeneratedProgram(
        0, GenConfig(), (("m0.mc", "int main( { return 0; }\n"),)
    )
    report = evaluate_program(program)
    assert report.diverged
    assert report.divergences[0].kind == "build-error"


def test_divergence_predicate_tracks_kind():
    broken = GeneratedProgram(
        0, GenConfig(), (("m0.mc", "int main( { return 0; }\n"),)
    )
    reference = evaluate_program(broken)
    predicate = divergence_predicate(reference)
    # Still interesting: the same syntax error.
    assert predicate(broken.modules)
    # A healthy program is not.
    assert not predicate(generate_program(0).modules)
