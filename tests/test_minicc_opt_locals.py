"""Tests for store-load forwarding and dead-store elimination."""

from repro.minicc import ir
from repro.minicc.irgen import lower_module
from repro.minicc.opt import optimize_function
from repro.minicc.parser import parse


def lowered(source):
    module = lower_module(parse(source, "t.c"))
    return module.functions[0]


def test_forwarding_folds_through_local():
    func = lowered("int f() { int x = 3; int y = x + 4; return y; }")
    optimize_function(func)
    consts = [i.value for i in func.body if isinstance(i, ir.Const)]
    assert 7 in consts
    assert not any(isinstance(i, ir.Bin) for i in func.body)


def test_forwarding_stops_at_labels():
    # The load of x sits after a join; forwarding must not apply.
    func = lowered(
        """
        int f(int c) {
            int x = 1;
            if (c) { x = 2; }
            return x + 10;
        }
        """
    )
    optimize_function(func)
    # x must still be loaded (value depends on the branch).
    assert any(isinstance(i, ir.LoadLocal) for i in func.body)


def test_forwarding_skips_address_taken_locals():
    func = lowered(
        """
        extern int poke(int *p);
        int f() {
            int x = 5;
            poke(&x);
            return x;
        }
        """
    )
    optimize_function(func)
    loads = [i for i in func.body if isinstance(i, ir.LoadLocal)]
    assert loads, "address-taken local must be reloaded after the call"


def test_forwarding_survives_calls_for_plain_locals():
    func = lowered(
        """
        extern int g();
        int f() {
            int x = 41;
            g();
            return x + 1;
        }
        """
    )
    optimize_function(func)
    consts = [i.value for i in func.body if isinstance(i, ir.Const)]
    assert 42 in consts


def test_dead_store_removed():
    func = lowered(
        """
        extern int g(int x);
        int f(int a) {
            int unused = g(a);   /* call kept, store dropped */
            return a;
        }
        """
    )
    optimize_function(func)
    assert not any(isinstance(i, ir.StoreLocal) for i in func.body)
    assert any(isinstance(i, ir.Call) for i in func.body)


def test_stores_to_read_locals_kept():
    func = lowered("int f(int a) { int x = a * 2; return x + x; }")
    optimize_function(func)
    # x feeds the result; its store may be forwarded away entirely, but
    # the computation must survive.
    assert any(
        isinstance(i, ir.BinImm) and i.op == "sll" for i in func.body
    ) or any(isinstance(i, ir.Bin) for i in func.body)
