"""Corpus persistence, byte-for-byte replay, and the campaign loop."""

from pathlib import Path

from repro.cache import ArtifactCache
from repro.fuzz import run_campaign
from repro.fuzz.corpus import (
    list_entries,
    load_entry,
    replay_entry,
    save_entry,
    sources_digest,
)
from repro.fuzz.generate import GenConfig, generate_program


def test_corpus_roundtrip(tmp_path):
    program = generate_program(42, GenConfig(modules=2))
    path = save_entry(
        tmp_path, program, kind="coverage", info={"new_pairs": [["move", "sched"]]}
    )
    assert path.name.startswith("coverage-seed00000042-")
    entry = load_entry(path)
    assert entry.kind == "coverage"
    assert entry.seed == 42
    assert entry.config == program.config
    assert entry.modules == program.modules
    assert entry.info == {"new_pairs": [["move", "sched"]]}
    assert list_entries(tmp_path) == [path]


def test_replay_is_byte_for_byte(tmp_path):
    program = generate_program(7)
    entry = load_entry(save_entry(tmp_path, program, kind="coverage"))
    regenerated, matches = replay_entry(entry)
    assert matches
    assert regenerated.modules == program.modules


def test_replay_detects_tampering(tmp_path):
    program = generate_program(7)
    path = save_entry(tmp_path, program, kind="coverage")
    name = program.modules[0][0]
    target = path / name
    target.write_text(target.read_text() + "\n/* edited */\n")
    __, matches = replay_entry(load_entry(path))
    assert not matches


def test_minimized_sources_persist(tmp_path):
    program = generate_program(7, GenConfig(modules=2))
    minimized = (("m0.mc", "int main() { return 0; }\n"),)
    path = save_entry(
        tmp_path, program, kind="divergence", minimized=minimized
    )
    entry = load_entry(path)
    assert entry.kind == "divergence"
    assert entry.minimized == minimized
    assert sources_digest(entry.modules) == sources_digest(program.modules)


def test_campaign_smoke(tmp_path):
    cache = ArtifactCache(tmp_path / "cache")
    stats = run_campaign(
        0, 3, corpus_dir=tmp_path / "corpus", cache=cache
    )
    assert stats.iterations == 3
    assert stats.ok
    assert not stats.divergences
    assert stats.coverage.programs == 3
    assert stats.coverage.counts
    # The first program always contributes fresh coverage, so the
    # corpus is non-empty and the replay check ran and passed.
    assert stats.corpus_paths
    assert stats.replay_ok is True
    assert "fuzz: seed=0 iterations=3" in stats.format()


def test_campaign_is_deterministic(tmp_path):
    cache = ArtifactCache(tmp_path / "cache")
    first = run_campaign(5, 3, corpus_dir=tmp_path / "c1", cache=cache)
    second = run_campaign(5, 3, corpus_dir=tmp_path / "c2", cache=cache)
    assert [p.name for p in first.corpus_paths] == [
        p.name for p in second.corpus_paths
    ]
    assert first.coverage.counts == second.coverage.counts
    # And the second run was fully cache-served.
    assert second.cache_misses == 0


def test_campaign_time_budget(tmp_path):
    stats = run_campaign(
        0, 50, time_budget=0.0, corpus_dir=tmp_path / "corpus"
    )
    # At least one wave always runs; the budget stops the rest.
    assert 1 <= stats.iterations < 50


def test_fuzz_cli_smoke(tmp_path, capsys, monkeypatch):
    from repro.experiments.__main__ import main

    monkeypatch.chdir(tmp_path)
    code = main(
        [
            "fuzz",
            "--seed",
            "0",
            "--iterations",
            "2",
            "--corpus-dir",
            str(tmp_path / "corpus"),
            "--cache-dir",
            str(tmp_path / "cache"),
            "--trace",
            str(tmp_path / "fuzz.json"),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "fuzz: seed=0 iterations=2" in out
    assert "replay:" in out
    assert (tmp_path / "fuzz.json").is_file()
    assert list_entries(tmp_path / "corpus")
