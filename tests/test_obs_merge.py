"""Merging per-process trace sinks and the correlation report."""

import json

import pytest

from repro.obs.merge import (
    correlation_report,
    iter_trace_files,
    merge_main,
    merge_traces,
    request_index,
)
from repro.obs.trace import TraceLog


def _sink(path, events):
    trace = TraceLog(sink=path)
    trace.events.extend(events)
    trace.flush()
    return path


def _span(name, ts, rid=None, pid=1, tid=0):
    event = {"name": name, "cat": "t", "ph": "X",
             "ts": ts, "dur": 5.0, "pid": pid, "tid": tid}
    if rid is not None:
        event["args"] = {"request_id": rid}
    return event


def test_iter_trace_files_expands_directories(tmp_path):
    _sink(tmp_path / "b.jsonl", [_span("x", 1.0)])
    _sink(tmp_path / "a.jsonl", [_span("y", 2.0)])
    (tmp_path / "ignored.json").write_text("{}")
    files = iter_trace_files([tmp_path])
    assert [f.name for f in files] == ["a.jsonl", "b.jsonl"]
    with pytest.raises(FileNotFoundError):
        iter_trace_files([tmp_path / "missing.jsonl"])


def test_merge_orders_by_timestamp_and_labels_processes(tmp_path):
    _sink(tmp_path / "server.jsonl",
          [_span("serve.run", 200.0, "r1", pid=10)])
    _sink(tmp_path / "worker-11.jsonl",
          [_span("worker.run", 300.0, "r1", pid=11)])
    _sink(tmp_path / "client.jsonl",
          [_span("client.run", 100.0, "r1", pid=12)])
    merged = merge_traces([tmp_path])
    names = [e["name"] for e in merged.events]
    # Metadata first, then spans in time order.
    meta = [e for e in merged.events if e.get("ph") == "M"]
    assert {e["args"]["name"] for e in meta} == {
        "server", "worker-11", "client",
    }
    spans = [n for n in names if n != "process_name"]
    assert spans == ["client.run", "serve.run", "worker.run"]


def _full_dir(tmp_path):
    """Sinks covering one executed request and one cached request."""
    _sink(tmp_path / "client.jsonl", [
        _span("client.run", 100.0, "c1:1", pid=1),
        _span("client.run", 110.0, "c1:2", pid=1),
    ])
    _sink(tmp_path / "server.jsonl", [
        _span("serve.cache_probe", 120.0, "c1:1", pid=2),
        _span("serve.execute", 130.0, "c1:1", pid=2),
        _span("serve.run", 140.0, "c1:1", pid=2),
        _span("serve.cache_probe", 121.0, "c1:2", pid=2),
        _span("serve.run", 141.0, "c1:2", pid=2),
    ])
    _sink(tmp_path / "worker-3.jsonl", [
        _span("worker.run", 135.0, "c1:1", pid=3),
    ])
    return tmp_path


def test_request_index_groups_by_request_id(tmp_path):
    merged = merge_traces([_full_dir(tmp_path)])
    index = request_index(merged)
    assert set(index) == {"c1:1", "c1:2"}
    assert len(index["c1:1"]) == 5
    assert len(index["c1:2"]) == 3


def test_correlation_report_ok_when_stitched(tmp_path):
    report = correlation_report(merge_traces([_full_dir(tmp_path)]))
    assert report["ok"]
    assert report["request_ids"] == 2
    assert report["client_spans"] == 2
    assert report["executed"] == 1  # the cached request never executed
    assert report["worker_spans"] == 1


def test_correlation_flags_executed_without_worker(tmp_path):
    _sink(tmp_path / "client.jsonl", [_span("client.run", 1.0, "r9", pid=1)])
    _sink(tmp_path / "server.jsonl", [
        _span("serve.execute", 2.0, "r9", pid=2),
        _span("serve.run", 3.0, "r9", pid=2),
    ])
    report = correlation_report(merge_traces([tmp_path]))
    assert not report["ok"]
    assert report["executed_without_worker"] == ["r9"]


def test_correlation_flags_client_without_server(tmp_path):
    _sink(tmp_path / "client.jsonl", [_span("client.run", 1.0, "r5", pid=1)])
    report = correlation_report(merge_traces([tmp_path]))
    assert not report["ok"]
    assert report["client_without_server"] == ["r5"]


def test_merge_main_writes_chrome_trace_and_gates(tmp_path, capsys):
    _full_dir(tmp_path)
    out = tmp_path / "merged.json"
    assert merge_main([str(tmp_path), "-o", str(out), "--report"]) == 0
    doc = json.loads(out.read_text())
    assert doc["traceEvents"]
    printed = capsys.readouterr().out
    assert "2 request ids" in printed

    # A broken dir (executed span, no worker span) exits non-zero.
    broken = tmp_path / "broken"
    broken.mkdir()
    _sink(broken / "server.jsonl", [
        _span("serve.execute", 1.0, "r1", pid=2),
    ])
    _sink(broken / "client.jsonl", [_span("client.run", 0.5, "r1", pid=1)])
    assert merge_main([str(broken), "-o", str(tmp_path / "m2.json")]) == 1


def test_merge_main_empty_correlation_is_not_a_failure(tmp_path):
    # Sinks with no request ids (e.g. a pure pipeline trace) merge fine.
    _sink(tmp_path / "pipeline.jsonl", [_span("build", 1.0)])
    assert merge_main([str(tmp_path), "-o", str(tmp_path / "m.json")]) == 0
