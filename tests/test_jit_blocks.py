"""JIT block discovery and translation-cache semantics.

The translator splits the text segment into basic blocks (segments)
at every branch target, call return, and procedure entry; these tests
pin the split-point rules on hand-written assembly — where word
indexes are knowable — plus the cache-invalidation contract of
:class:`repro.machine.jit.CompiledProgram`.
"""

import pytest

from repro.isa.textasm import assemble_text
from repro.linker import link
from repro.machine import run
from repro.machine.jit import (
    JitMachine,
    _FALLBACK,
    clear_jit_cache,
    jit_cache_len,
    program_for,
)


def _link_asm(crt0, libmc, source):
    return link([crt0, assemble_text(source, "t.o")], [libmc])


def _proc_index(machine, name):
    """Word index of a named procedure's entry."""
    for proc in machine.executable.procs:
        if proc.name == name:
            return (proc.addr - machine.text_base) >> 2
    raise KeyError(name)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_jit_cache()
    yield
    clear_jit_cache()


BRANCHY = """
        .ent    main
main:   lda     $t0, 3($zero)
loop:   subq    $t0, 1, $t0
        bne     $t0, loop
        lda     $a0, 7($zero)
        call_pal putint
        lda     $v0, 0($zero)
        ret     $zero, ($ra)
        .end    main
"""


def test_splits_at_branch_target_and_fallthrough(crt0, libmc):
    machine = JitMachine(_link_asm(crt0, libmc, BRANCHY))
    prog = program_for(machine)
    main = _proc_index(machine, "main")
    loop = main + 1   # the bne target
    after = main + 3  # the bne fall-through
    assert main in prog.splits
    assert loop in prog.splits
    assert after in prog.splits
    # The block holding the branch ends exactly at the branch.
    assert prog.segment_end(loop) == after
    # Targets of the branch block: taken target first, then fall-through.
    assert prog.region_targets(loop) == (loop, after)
    assert machine.run(timed=False).output == "7\n"


CALLS = """
        .ent    main
main:   ldah    $gp, 0($pv)      !gpdisp:main
        lda     $gp, 0($gp)      !gpdisp_pair
        lda     $s0, 0($ra)
        ldq     $pv, callee($gp) !literal
        jsr     $ra, ($pv)       !lituse_jsr !hint:callee
        lda     $a0, 0($v0)
        call_pal putint
        lda     $v0, 0($zero)
        ret     $zero, ($s0)
        .end    main

        .ent    callee
callee: lda     $v0, 42($zero)
        ret     $zero, ($ra)
        .end    callee
"""


def test_splits_at_jsr_return_and_proc_entries(crt0, libmc):
    machine = JitMachine(_link_asm(crt0, libmc, CALLS))
    prog = program_for(machine)
    main = _proc_index(machine, "main")
    callee = _proc_index(machine, "callee")
    jsr = main + 4
    # The word after the jsr (the return continuation) is a split, and
    # the caller's block ends at the jsr even though no label is there.
    assert jsr + 1 in prog.splits
    assert prog.segment_end(main) == jsr + 1
    # Procedure entries are splits (the ret needs somewhere to land).
    assert callee in prog.splits
    # The linker-hinted jsr predicts the callee; the continuation is
    # the second (fall-through) target.
    assert prog.jump_hint[jsr] == callee
    assert prog.region_targets(main) == (callee, jsr + 1)
    assert machine.run(timed=False).output == "42\n"


GAT_STRADDLE = """
        .ent    main
main:   ldah    $gp, 0($pv)      !gpdisp:main
        lda     $gp, 0($gp)      !gpdisp_pair
        lda     $t1, 2($zero)
        ldq     $t0, value($gp)  !literal
top:    ldq     $a0, 0($t0)      !lituse_base
        call_pal putint
        subq    $t1, 1, $t1
        bne     $t1, top
        lda     $v0, 0($zero)
        ret     $zero, ($ra)
        .end    main

        .data
value:  .quad   1994
"""


def test_gat_load_sequence_straddling_block_edge(crt0, libmc):
    """A GAT address load in one block, its dependent load in the next.

    The loop label falls between the two halves of the sequence, so
    the address produced by the first block's ``ldq rX, d(gp)`` must
    flow into the branch-target block through the region state — the
    translator may not assume the pair stays intact inside one block.
    """
    machine = JitMachine(_link_asm(crt0, libmc, GAT_STRADDLE))
    prog = program_for(machine)
    main = _proc_index(machine, "main")
    gat_load = main + 3
    top = main + 4
    assert top in prog.splits
    # The GAT address load is the last word of its block...
    assert prog.segment_end(main) == top
    # ...and the dependent data load starts the branch-target block.
    assert prog.segment_end(top) == top + 4
    result = machine.run(timed=False)
    assert result.output == "1994\n1994\n"
    interp = run(machine.executable, timed=False)
    assert (result.output, result.instructions) == (
        interp.output, interp.instructions
    )
    assert gat_load == main + 3  # documented layout held


def test_cache_invalidation_recompiles_lazily(crt0, libmc):
    machine = JitMachine(_link_asm(crt0, libmc, BRANCHY))
    prog = program_for(machine)
    first = machine.run(timed=False)
    assert prog.stats.regions > 0
    assert prog.tables and prog.sources

    prog.invalidate()
    assert not prog.tables
    assert not prog.sources
    assert not prog.seg_len
    assert prog.stats.invalidations == 1

    # The next run retranslates and reproduces the result exactly.
    again = JitMachine(machine.executable).run(timed=False)
    assert (again.output, again.instructions, again.cycles) == (
        first.output, first.instructions, first.cycles
    )
    assert prog.stats.regions > 0


def test_compiled_program_shared_and_keyed_by_image(crt0, libmc):
    exe = _link_asm(crt0, libmc, BRANCHY)
    one = program_for(JitMachine(exe))
    two = program_for(JitMachine(exe))
    assert one is two
    assert jit_cache_len() == 1
    other = program_for(JitMachine(_link_asm(crt0, libmc, CALLS)))
    assert other is not one
    assert jit_cache_len() == 2
    clear_jit_cache()
    assert jit_cache_len() == 0
    assert program_for(JitMachine(exe)) is not one


def test_untranslatable_start_uses_fallback(crt0, libmc, monkeypatch):
    from repro.machine import jit as jit_mod

    exe = _link_asm(crt0, libmc, BRANCHY)
    reference = JitMachine(exe).run(timed=False)
    clear_jit_cache()
    # Shrink the translatable set: every operate instruction now routes
    # through the single-step interpreter fallback.
    monkeypatch.setattr(
        jit_mod,
        "_TRANSLATABLE",
        jit_mod._TRANSLATABLE - {jit_mod.K_OP_RR, jit_mod.K_OP_RL},
    )
    machine = JitMachine(exe)
    result = machine.run(timed=False)
    assert (result.output, result.instructions, result.cycles) == (
        reference.output, reference.instructions, reference.cycles
    )
    prog = program_for(machine)
    assert prog.stats.fallback_steps > 0
    flavor_tables = list(prog.tables.values())
    assert any(
        entry is _FALLBACK
        for table in flavor_tables
        for entry in table.values()
    )
