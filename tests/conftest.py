"""Shared fixtures: the stdlib archive and small helper toolchains."""

from __future__ import annotations

import pytest

from repro.benchsuite import build_stdlib
from repro.linker import link, make_crt0
from repro.machine import run
from repro.minicc import compile_module
from repro.objfile.archive import Archive


@pytest.fixture(scope="session")
def libmc() -> Archive:
    return build_stdlib()


@pytest.fixture(scope="session")
def crt0():
    return make_crt0()


@pytest.fixture()
def toolchain(libmc, crt0):
    """Compile+link+run helper for small test programs."""

    def execute(source: str, *, timed: bool = False, extra_sources=()):
        objects = [crt0, compile_module(source, "test.o")]
        for index, text in enumerate(extra_sources):
            objects.append(compile_module(text, f"extra{index}.o"))
        exe = link(objects, [libmc])
        return run(exe, timed=timed)

    return execute


def outputs(result) -> list[int]:
    """Parse simulator output lines into ints."""
    return [int(line) for line in result.output.split()]
