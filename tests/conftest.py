"""Shared fixtures, plus the repo-wide hypothesis settings profiles.

Two profiles are registered for every property test:

* ``local`` (default) — no deadline (compile+simulate examples are
  slow and timing-noisy), normal randomized exploration;
* ``ci`` — additionally derandomized, so CI failures are always
  reproducible and runs never flake on example choice.  Selected
  automatically when ``$CI`` is set, or explicitly with
  ``--hypothesis-profile=ci``.

Individual tests still pin ``max_examples`` via ``@settings`` where
the example cost warrants it.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.benchsuite import build_stdlib
from repro.linker import link, make_crt0
from repro.machine import run
from repro.minicc import compile_module
from repro.objfile.archive import Archive

settings.register_profile(
    "local",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    settings.get_profile("local"),
    derandomize=True,
    print_blob=True,
)
settings.load_profile("ci" if os.environ.get("CI") else "local")


@pytest.fixture(scope="session")
def libmc() -> Archive:
    return build_stdlib()


@pytest.fixture(scope="session")
def crt0():
    return make_crt0()


@pytest.fixture()
def toolchain(libmc, crt0):
    """Compile+link+run helper for small test programs."""

    def execute(source: str, *, timed: bool = False, extra_sources=()):
        objects = [crt0, compile_module(source, "test.o")]
        for index, text in enumerate(extra_sources):
            objects.append(compile_module(text, f"extra{index}.o"))
        exe = link(objects, [libmc])
        return run(exe, timed=timed)

    return execute


def outputs(result) -> list[int]:
    """Parse simulator output lines into ints."""
    return [int(line) for line in result.output.split()]
