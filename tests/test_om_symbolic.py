"""OM symbolic translation round-trip tests.

Translating object code to symbolic form and reassembling it unchanged
must produce a program with identical behaviour — the paper's "key
idea" depends on this round trip being lossless.
"""

from repro.isa.encoding import decode_stream
from repro.linker import link, make_crt0
from repro.linker.resolve import resolve_inputs
from repro.machine import run
from repro.minicc import Options, compile_module
from repro.objfile.relocations import RelocType
from repro.objfile.sections import SectionKind
from repro.om import OMLevel, om_link
from repro.om.symbolic import reassemble_module, translate_module

SOURCE = """
int g;
int table[6];
extern int helper(int x);
static int local_fn(int x) { return x - 1; }
int pick(int x) {
    switch (x) {
        case 0: return 10; case 1: return 11; case 2: return 12;
        case 3: return 13; case 4: return 14;
    }
    return -1;
}
int main() {
    int i;
    int s = 0;
    for (i = 0; i < 5; i++) {
        table[i] = pick(i) + helper(i) + local_fn(i);
        s += table[i];
    }
    g = s;
    __putint(g);
    return 0;
}
"""

HELPER = "int helper(int x) { return x * 2; }"


def build_objs(crt0):
    return [
        crt0,
        compile_module(SOURCE, "main.o"),
        compile_module(HELPER, "helper.o", Options(schedule=False)),
    ]


def test_translate_recovers_procedures(crt0):
    obj = compile_module(SOURCE, "main.o")
    sym = translate_module(obj)
    names = [p.name for p in sym.procs]
    assert names == [p.name for p in obj.procedures()]
    assert {"local_fn", "pick", "main"} <= set(names)


def test_translate_identifies_gp_pairs(crt0):
    obj = compile_module(SOURCE, "main.o")
    sym = translate_module(obj)
    main = sym.proc_named("main")
    entry_pairs = [
        i for i in main.instructions() if i.gpdisp_base == "main"
    ]
    assert len(entry_pairs) == 1
    reset_pairs = [
        i
        for i in main.instructions()
        if i.gpdisp_base is not None and i.gpdisp_base != "main"
    ]
    assert len(reset_pairs) >= 1  # after the helper call


def test_translate_links_jump_table(crt0):
    obj = compile_module(SOURCE, "main.o")
    sym = translate_module(obj)
    pick = sym.proc_named("pick")
    jmptabs = [i for i in pick.instructions() if i.jmptab is not None]
    assert len(jmptabs) == 1
    labeled_refs = [r for r in sym.data_refs if r.label is not None]
    assert len(labeled_refs) == 5  # five case targets


def test_reassembly_identity_same_bytes():
    obj = compile_module(SOURCE, "main.o")
    back, __ = reassemble_module(translate_module(obj))
    assert bytes(back.section(SectionKind.TEXT).data) == bytes(
        obj.section(SectionKind.TEXT).data
    )
    original = {(r.type, r.offset, r.symbol, r.addend, r.extra) for r in obj.relocations}
    rebuilt = {(r.type, r.offset, r.symbol, r.addend, r.extra) for r in back.relocations}
    assert original == rebuilt


def test_om_none_executable_matches_standard_link(libmc, crt0):
    objs = build_objs(crt0)
    base = run(link(objs, [libmc]))
    om = om_link(objs, [libmc], level=OMLevel.NONE)
    result = run(om.executable)
    assert result.output == base.output
    assert result.cycles == base.cycles  # byte-identical code paths


def test_roundtrip_of_every_stdlib_module(libmc):
    for member in libmc.members:
        back, __ = reassemble_module(translate_module(member))
        assert bytes(back.section(SectionKind.TEXT).data) == bytes(
            member.section(SectionKind.TEXT).data
        ), member.name


def test_translation_rejects_corrupt_text():
    from repro.om.symbolic import TranslationError
    import pytest

    obj = compile_module("int f() { return 1; }", "t.o")
    text = obj.section(SectionKind.TEXT)
    text.data[0:4] = (0x07 << 26).to_bytes(4, "little")  # unassigned opcode
    with pytest.raises(Exception):
        translate_module(obj)
