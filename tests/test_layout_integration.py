"""End-to-end layout subsystem: the closed PGO loop through om_link,
the relaxation-vs-one-shot comparison, and the experiment wiring."""

from repro.machine import run
from repro.machine.profile import profile
from repro.minicc import compile_module
from repro.obs import provenance
from repro.obs.trace import TraceLog
from repro.om import OMLevel, OMOptions, om_link

MAIN = """
extern int mix(int a, int b);
int helper(int x) { return x * 3 + 1; }
int main() {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < 50; i = i + 1) {
        acc = acc + mix(helper(i), i);
    }
    __putint(acc);
    return 0;
}
"""

AUX = """
int mix(int a, int b) { return a * 2 - b; }
"""


def _objs(crt0):
    return [
        crt0,
        compile_module(MAIN, "main.o"),
        compile_module(AUX, "aux.o"),
    ]


def test_relax_converts_where_one_shot_cannot(libmc, crt0):
    """At ``bsr_range_words=1024`` the legacy one-shot threshold
    ``4 * range - 65536`` is negative, so it forfeits *every*
    conversion; the exact fixpoint still converts in-range sites —
    strictly more jsr->bsr, byte-identical output."""
    legacy = om_link(
        _objs(crt0),
        [libmc],
        level=OMLevel.FULL,
        options=OMOptions(bsr_range_words=1024),
    )
    relaxed = om_link(
        _objs(crt0),
        [libmc],
        level=OMLevel.FULL,
        options=OMOptions(relax=True, bsr_range_words=1024),
    )
    assert legacy.counters.jsr_to_bsr == 0
    assert relaxed.counters.jsr_to_bsr > 0
    assert (
        run(legacy.executable, timed=False).output
        == run(relaxed.executable, timed=False).output
    )
    assert relaxed.stats.relax_iterations >= 1


def test_relax_never_converts_less_at_default_range(libmc, crt0):
    legacy = om_link(_objs(crt0), [libmc], level=OMLevel.FULL)
    relaxed = om_link(
        _objs(crt0), [libmc], level=OMLevel.FULL, options=OMOptions(relax=True)
    )
    assert relaxed.counters.jsr_to_bsr >= legacy.counters.jsr_to_bsr
    assert (
        run(relaxed.executable, timed=False).output
        == run(legacy.executable, timed=False).output
    )


def test_closed_pgo_loop_preserves_output(libmc, crt0):
    """profile -> layout relink: identical output, no fewer jsr->bsr,
    no more executed GAT loads."""
    base = om_link(_objs(crt0), [libmc], level=OMLevel.FULL)
    base_prof = profile(base.executable, timed=False)
    layout = om_link(
        _objs(crt0),
        [libmc],
        level=OMLevel.FULL,
        options=OMOptions(layout=True, relax=True),
        profile=base_prof,
    )
    layout_prof = profile(layout.executable, timed=False)
    assert layout_prof.run.output == base_prof.run.output
    assert layout.counters.jsr_to_bsr >= base.counters.jsr_to_bsr
    assert layout_prof.overhead.gat_loads <= base_prof.overhead.gat_loads
    assert layout.stats.relax_iterations >= 1


def test_layout_static_fallback_without_profile(libmc, crt0):
    base = om_link(_objs(crt0), [libmc], level=OMLevel.FULL)
    layout = om_link(
        _objs(crt0),
        [libmc],
        level=OMLevel.FULL,
        options=OMOptions(layout=True, relax=True),
    )
    assert (
        run(layout.executable, timed=False).output
        == run(base.executable, timed=False).output
    )


def test_layout_emits_new_provenance_actions(libmc, crt0):
    trace = TraceLog()
    result = om_link(
        _objs(crt0),
        [libmc],
        level=OMLevel.FULL,
        options=OMOptions(layout=True, relax=True),
        trace=trace,
    )
    actions = {args["action"] for args in provenance.events(trace)}
    assert {"reorder", "hot-place", "relax"} <= actions
    # The new events claim no counters, so reconciliation still holds.
    assert provenance.reconcile(trace, result.counters) == {}


def test_plan_cells_pgo_adds_feedback_dependencies():
    from repro.experiments.pipeline import plan_cells

    plan = plan_cells(["pgo"], programs=["compress"])
    assert ("compress", "each", "om-full-layout") in plan.links
    # The feedback link pulls in the base link and its profiled run.
    assert ("compress", "each", "om-full") in plan.links
    assert ("compress", "each", "om-full") in plan.profiles
    assert ("compress", "each", "om-full-layout") in plan.profiles


def test_pgo_rows_smoke():
    from repro.experiments import build
    from repro.experiments.figures import pgo_rows

    previous = build.configure_cache(None)
    try:
        keys, rows = pgo_rows(["compress"], scale=1)
    finally:
        build.configure_cache(previous)
    assert rows[0]["program"] == "compress"
    assert rows[-1]["program"] == "mean"
    row = rows[0]
    assert row["layout_bsr"] >= row["full_bsr"]
    assert row["layout_gat_exec"] <= row["full_gat_exec"]
    assert 0.0 <= row["layout_bsr_rate"] <= 1.0
    assert row["procs_moved"] >= 0
    assert row["relax_iters"] >= 1
