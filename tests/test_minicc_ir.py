"""IR generation and optimizer unit tests."""

from repro.minicc import ir
from repro.minicc.irgen import lower_module
from repro.minicc.inline import inline_module
from repro.minicc.opt import optimize_function, optimize_module
from repro.minicc.parser import parse


def lower(source):
    return lower_module(parse(source, "t.c"))


def func_named(module, name):
    return next(f for f in module.functions if f.name == name)


def instr_types(func):
    return [type(i).__name__ for i in func.body]


def test_simple_function_shape():
    module = lower("int f(int x) { return x + 1; }")
    func = module.functions[0]
    assert func.params == ["x"]
    assert isinstance(func.body[-1], ir.Ret)
    assert any(isinstance(i, ir.Bin) and i.op == "add" for i in func.body)


def test_globals_lowered_with_size():
    module = lower("int a; int b[8]; static int c = 5;")
    by_name = {g.name: g for g in module.globals}
    assert by_name["a"].size == 8
    assert by_name["b"].size == 64 and by_name["b"].is_array
    assert by_name["c"].init == [5] and not by_name["c"].exported


def test_global_access_uses_addr_plus_load():
    module = lower("int g; int f() { return g; }")
    func = module.functions[0]
    assert any(isinstance(i, ir.AddrGlobal) and i.symbol == "g" for i in func.body)
    assert any(isinstance(i, ir.Load) for i in func.body)


def test_loop_rotated_single_backward_branch():
    module = lower("int f(int n) { int i; int s=0; for (i=0;i<n;i++){s+=i;} return s; }")
    func = module.functions[0]
    jumps = [i for i in func.body if isinstance(i, ir.Jump)]
    cjumps = [i for i in func.body if isinstance(i, ir.CJump)]
    # Rotation: one entry jump to the test, one conditional at the bottom.
    assert len(jumps) == 1 and len(cjumps) == 1


def test_address_taken_local_flagged():
    module = lower("int f() { int x; int *p = &x; return *p; }")
    func = module.functions[0]
    assert func.locals[0].addr_taken


def test_array_local_is_array():
    module = lower("int f() { int a[4]; a[0] = 1; return a[0]; }")
    func = module.functions[0]
    local = next(l for l in func.locals if l.name == "a")
    assert local.is_array and local.size == 32


def test_dense_switch_becomes_jump_table():
    source = """
    int f(int x) {
        switch (x) {
            case 0: return 1; case 1: return 2; case 2: return 3;
            case 3: return 4; case 4: return 5;
        }
        return 0;
    }
    """
    func = lower(source).functions[0]
    assert any(isinstance(i, ir.JumpTable) for i in func.body)


def test_sparse_switch_becomes_compare_chain():
    source = """
    int f(int x) {
        switch (x) { case 1: return 1; case 100: return 2; case 10000: return 3; }
        return 0;
    }
    """
    func = lower(source).functions[0]
    assert not any(isinstance(i, ir.JumpTable) for i in func.body)
    assert sum(1 for i in func.body if isinstance(i, ir.CJump)) >= 3


def test_division_stays_symbolic_until_codegen():
    func = lower("int f(int a, int b) { return a / b; }").functions[0]
    assert any(isinstance(i, ir.Bin) and i.op == "div" for i in func.body)


# -- optimizer -----------------------------------------------------------------


def test_constant_folding_collapses_expression():
    func = lower("int f() { return 2 + 3 * 4; }").functions[0]
    optimize_function(func)
    consts = [i for i in func.body if isinstance(i, ir.Const)]
    assert any(c.value == 14 for c in consts)
    assert not any(isinstance(i, ir.Bin) for i in func.body)


def test_mul_by_power_of_two_becomes_shift():
    func = lower("int f(int x) { return x * 8; }").functions[0]
    optimize_function(func)
    assert any(
        isinstance(i, ir.BinImm) and i.op == "sll" and i.imm == 3 for i in func.body
    )


def test_small_constants_become_immediates():
    func = lower("int f(int x) { return x + 5; }").functions[0]
    optimize_function(func)
    assert any(isinstance(i, ir.BinImm) and i.imm == 5 for i in func.body)


def test_division_not_folded_into_immediate_form():
    func = lower("int f(int x) { return x / 3; }").functions[0]
    optimize_function(func)
    assert any(isinstance(i, ir.Bin) and i.op == "div" for i in func.body)


def test_dead_code_removed():
    func = lower("int f(int x) { int unused = x * 37; return x; }").functions[0]
    optimize_function(func)
    assert not any(isinstance(i, ir.Bin) and i.op == "mul" for i in func.body)


def test_constant_branch_simplified():
    func = lower("int f() { if (1) { return 5; } return 9; }").functions[0]
    optimize_function(func)
    assert not any(isinstance(i, ir.CJump) for i in func.body)


def test_unused_call_result_voided():
    func = lower("extern int g(int x); int f() { g(1); return 0; }").functions[0]
    optimize_function(func)
    call = next(i for i in func.body if isinstance(i, ir.Call))
    assert call.dst is None


def test_folding_division_semantics_match_c():
    # -7/2 truncates toward zero, unlike Python floor division.
    func = lower("int f() { return -7 / 2; }").functions[0]
    optimize_function(func)
    consts = [i.value for i in func.body if isinstance(i, ir.Const)]
    assert -3 in consts


# -- inliner ------------------------------------------------------------------


def test_inline_small_callee():
    module = lower(
        """
        int tiny(int x) { return x + 1; }
        int f(int y) { return tiny(y) * 2; }
        """
    )
    count = inline_module(module)
    assert count >= 1
    f = func_named(module, "f")
    assert not any(
        isinstance(i, ir.Call) and i.callee == "tiny" for i in f.body
    )


def test_inline_skips_recursive():
    module = lower("int f(int n) { if (n < 2) { return n; } return f(n-1); }")
    assert inline_module(module) == 0


def test_inline_preserves_semantics_structurally():
    module = lower(
        """
        int add(int a, int b) { return a + b; }
        int f() { return add(3, 4); }
        """
    )
    inline_module(module)
    optimize_module(module)
    f = func_named(module, "f")
    assert not any(isinstance(i, ir.Call) for i in f.body)
    # Store-load forwarding lets the whole call fold to a constant.
    consts = [i.value for i in f.body if isinstance(i, ir.Const)]
    assert 7 in consts


def test_inline_replicates_library_calls():
    # The paper's footnote: inlining a routine that calls a library
    # routine replicates the library call.
    module = lower(
        """
        extern int lib(int x);
        int wrap(int x) { return lib(x) + 1; }
        int f(int a) { return wrap(a) + wrap(a + 1); }
        """
    )
    inline_module(module)
    f = func_named(module, "f")
    lib_calls = [i for i in f.body if isinstance(i, ir.Call) and i.callee == "lib"]
    assert len(lib_calls) == 2
