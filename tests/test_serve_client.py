"""Client reliability layer against a scripted (flaky) fake server.

The fake speaks the real wire protocol on a real socket but follows a
per-connection script — drop, answer busy, answer garbage, go silent —
so every retry/timeout/backoff path is exercised deterministically,
without a toolchain in sight.
"""

import random
import socket
import threading

import pytest

from repro.serve import protocol
from repro.serve.client import (
    ConnectionFailed,
    RequestFailed,
    RequestTimeout,
    ServeClient,
    ServerBusy,
)


class FakeServer:
    """A TCP server whose connections follow a script.

    Each element of ``script`` handles one accepted connection:

    * ``"drop"``        — close immediately (clean EOF before a reply);
    * ``"busy:<s>[:reason]"`` — answer every request with retry-after
      <s> (optionally tagged with a rejection ``reason``);
    * ``"busy-once:<s>"`` — retry-after <s> for the first request on
      the connection, ok afterwards;
    * ``"silent"``      — read requests, never reply;
    * ``"garbage"``     — reply with bytes that are not a frame;
    * ``"wrong-id"``    — reply ok but to a different request id;
    * ``"ok"``          — answer every request with an ok echo;
    * ``"fail:<kind>"`` — answer every request with that error kind.

    The last element is reused for any further connections.
    """

    def __init__(self, script):
        self.script = list(script)
        self.connections = 0
        self._sock = socket.socket()
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.address = self._sock.getsockname()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self._stop.set()
        self._sock.close()
        self._thread.join(timeout=10)

    def _serve(self):
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return  # listener closed
            step = self.script[min(self.connections, len(self.script) - 1)]
            self.connections += 1
            try:
                self._handle(conn, step)
            except OSError:
                pass
            finally:
                conn.close()

    def _handle(self, conn, step):
        if step == "drop":
            return
        conn.settimeout(10)
        answered = 0
        while True:
            request = protocol.recv_frame(conn)
            if request is None:
                return
            rid = request["id"]
            if step == "silent":
                continue
            if step == "garbage":
                conn.sendall(b"\x00\x00\x00\x04not!")
                return
            if step == "wrong-id":
                protocol.send_frame(conn, protocol.ok_response(rid + 1000, {}))
                continue
            if step.startswith("busy:") or (
                step.startswith("busy-once:") and answered == 0
            ):
                parts = step.split(":")
                hint = float(parts[1])
                reason = parts[2] if len(parts) > 2 else None
                protocol.send_frame(
                    conn, protocol.busy_response(rid, hint, reason=reason)
                )
                answered += 1
                continue
            if step.startswith("busy-once:"):
                protocol.send_frame(
                    conn, protocol.ok_response(rid, {"echo": request["op"]})
                )
                answered += 1
                continue
            if step.startswith("fail:"):
                kind = step.split(":", 1)[1]
                protocol.send_frame(
                    conn, protocol.error_response(rid, kind, "scripted")
                )
                continue
            assert step == "ok", step
            protocol.send_frame(
                conn, protocol.ok_response(rid, {"echo": request["op"]})
            )


def _client(server, **kwargs):
    kwargs.setdefault("timeout", 5)
    kwargs.setdefault("backoff", 0.001)
    kwargs.setdefault("sleep", lambda s: None)  # don't actually wait in tests
    return ServeClient(server.address, **kwargs)


# -- transport retries ---------------------------------------------------------


def test_reconnects_after_dropped_connections():
    with FakeServer(["drop", "drop", "ok"]) as server:
        with _client(server, retries=5) as client:
            response = client.request("status")
        assert response["ok"] and response["result"] == {"echo": "status"}
        assert client.transport_retries == 2
        assert server.connections == 3


def test_connection_failed_when_retries_exhausted():
    with FakeServer(["drop"]) as server:
        with _client(server, retries=2) as client:
            with pytest.raises(ConnectionFailed):
                client.request("status")
        assert client.transport_retries == 2
        assert server.connections == 3  # initial try + 2 retries


def test_connection_refused_is_retried_then_raised():
    # Grab (and release) an ephemeral port nothing is listening on.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    address = probe.getsockname()
    probe.close()

    sleeps = []
    client = ServeClient(
        address, timeout=5, retries=3, backoff=0.01,
        sleep=sleeps.append, rng=random.Random(7),
    )
    with pytest.raises(ConnectionFailed):
        client.request("status")
    assert client.transport_retries == 3
    # Full jitter: each pause is a uniform draw from the capped
    # exponential window 0.01 * 2^attempt.
    assert len(sleeps) == 3
    for delay, window in zip(sleeps, [0.01, 0.02, 0.04]):
        assert 0.0 <= delay <= window


def test_garbage_reply_is_retried_on_a_fresh_connection():
    with FakeServer(["garbage", "ok"]) as server:
        with _client(server, retries=3) as client:
            assert client.request("status")["ok"]
        assert client.transport_retries == 1


# -- backpressure honoring -----------------------------------------------------


def test_busy_then_ok_honors_retry_after():
    sleeps = []
    with FakeServer(["busy-once:0.25"]) as server:
        client = ServeClient(
            server.address, timeout=5, retries=4,
            backoff=0.001, backoff_cap=2.0, sleep=sleeps.append,
        )
        response = client.request("run")
        client.close()
        assert response["ok"]
        assert client.busy_retries == 1
        assert server.connections == 1  # retried on the same connection
    # The server's hint (0.25s) dominates the tiny base backoff.
    assert sleeps == [pytest.approx(0.25)]


def test_server_busy_carries_attempts_and_hint():
    with FakeServer(["busy:0.5"]) as server:
        with _client(server, retries=2) as client:
            with pytest.raises(ServerBusy) as err:
                client.request("run")
        assert err.value.attempts == 3
        assert err.value.retry_after == pytest.approx(0.5)
        assert client.busy_retries == 3


def test_full_jitter_decorrelates_two_clients():
    """Satellite: two clients backing off from the same busy burst must
    draw *distinct* sleep schedules — deterministic backoff would
    re-synchronize a coalesce burst into a retry storm."""
    schedules = []
    for seed in (1, 2):
        sleeps = []
        with FakeServer(["busy:0.0"]) as server:
            client = ServeClient(
                server.address, timeout=5, retries=4,
                backoff=0.05, backoff_cap=2.0,
                sleep=sleeps.append, rng=random.Random(seed),
            )
            with pytest.raises(ServerBusy):
                client.request("run")
            client.close()
        assert len(sleeps) == 4
        schedules.append(sleeps)
    assert schedules[0] != schedules[1]
    # Every draw stays inside its exponential window.
    for sleeps in schedules:
        for delay, window in zip(sleeps, [0.05, 0.1, 0.2, 0.4]):
            assert 0.0 <= delay <= window


def test_jitter_is_reproducible_for_equal_seeds():
    schedules = []
    for _ in range(2):
        sleeps = []
        with FakeServer(["busy:0.0"]) as server:
            client = ServeClient(
                server.address, timeout=5, retries=3,
                backoff=0.05, sleep=sleeps.append, rng=random.Random(9),
            )
            with pytest.raises(ServerBusy):
                client.request("run")
            client.close()
        schedules.append(sleeps)
    assert schedules[0] == schedules[1]


def test_jittered_pause_is_floored_at_the_server_hint():
    """The server knows when capacity frees up: a draw below its
    ``retry_after`` hint is raised to the hint (and still capped)."""
    sleeps = []
    with FakeServer(["busy:0.2"]) as server:
        client = ServeClient(
            server.address, timeout=5, retries=3,
            backoff=0.001, backoff_cap=2.0,
            sleep=sleeps.append, rng=random.Random(3),
        )
        with pytest.raises(ServerBusy):
            client.request("run")
        client.close()
    # Window (0.001 * 2^n) is far below the 0.2 s hint: floored exactly.
    assert sleeps == [pytest.approx(0.2)] * 3


def test_busy_reason_is_tracked_and_carried():
    with FakeServer(["busy:0.1:quota"]) as server:
        client = _client(server, retries=2)
        with pytest.raises(ServerBusy) as err:
            client.request("run")
        client.close()
    assert err.value.reason == "quota"
    assert client.busy_reasons == {"quota": 3}


def test_backoff_is_capped():
    sleeps = []
    with FakeServer(["busy:9.0"]) as server:
        client = ServeClient(
            server.address, timeout=5, retries=3,
            backoff=0.01, backoff_cap=0.3, sleep=sleeps.append,
        )
        with pytest.raises(ServerBusy):
            client.request("run")
        client.close()
    # Every pause (hint 9s, backoff growing) is clamped to the cap.
    assert sleeps == [0.3, 0.3, 0.3]


# -- timeouts and protocol hygiene ---------------------------------------------


def test_silent_server_raises_request_timeout_without_retry():
    with FakeServer(["silent", "ok"]) as server:
        with _client(server, timeout=0.2, retries=5) as client:
            with pytest.raises(RequestTimeout):
                client.request("status")
            # Timeouts are not retried: the reply may still be in flight
            # and retrying could cross answers between requests.
            assert client.transport_retries == 0
            # But the poisoned connection was dropped, so the *next*
            # request starts fresh and succeeds.
            assert client.request("status")["ok"]
        assert server.connections == 2


def test_mismatched_response_id_is_a_protocol_error():
    with FakeServer(["wrong-id"]) as server:
        with _client(server, retries=0) as client:
            with pytest.raises(protocol.ProtocolError, match="id"):
                client.request("status")


def test_error_reply_raises_request_failed_without_retry():
    with FakeServer(["fail:bad-request", "ok"]) as server:
        with _client(server, retries=5) as client:
            with pytest.raises(RequestFailed) as err:
                client.request("compile")
            assert err.value.kind == "bad-request"
        # No retries: a definitive error is not flakiness.
        assert server.connections == 1
