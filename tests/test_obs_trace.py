"""TraceLog recording, persistence, and Chrome-trace export."""

import json
import threading

from repro.obs.trace import TraceLog, now_us, span_or_null


def test_span_records_complete_event():
    trace = TraceLog()
    with trace.span("link", cat="om", modules=3):
        pass
    assert len(trace) == 1
    event = trace.events[0]
    assert event["name"] == "link"
    assert event["cat"] == "om"
    assert event["ph"] == "X"
    assert event["dur"] >= 0
    assert event["args"] == {"modules": 3}
    assert isinstance(event["ts"], float)
    assert event["pid"] > 0


def test_spans_nest_and_order():
    trace = TraceLog()
    with trace.span("outer"):
        with trace.span("inner"):
            pass
    # Inner closes first, so it appends first; both are present.
    assert [e["name"] for e in trace.events] == ["inner", "outer"]
    inner, outer = trace.events
    assert outer["ts"] <= inner["ts"]
    assert outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"]


def test_instant_and_counter_events():
    trace = TraceLog()
    trace.event("cache.miss", cat="cache", key="abc")
    trace.counter("gat.bytes", before=800, after=96)
    instant, counter = trace.events
    assert instant["ph"] == "i"
    assert instant["s"] == "p"
    assert instant["args"]["key"] == "abc"
    assert counter["ph"] == "C"
    assert counter["args"] == {"before": 800, "after": 96}


def test_add_span_uses_external_timestamps():
    trace = TraceLog()
    trace.add_span("build", 1000.0, 4000.0, pid=42, tid=0, stage="build")
    event = trace.events[0]
    assert event["ts"] == 1000.0
    assert event["dur"] == 3000.0
    assert event["pid"] == 42
    # Negative durations are clamped rather than exported.
    trace.add_span("skew", 5000.0, 4000.0)
    assert trace.events[1]["dur"] == 0.0


def test_select_filters_by_cat_and_name():
    trace = TraceLog()
    trace.event("a", cat="x")
    trace.event("b", cat="x")
    trace.event("a", cat="y")
    assert len(trace.select(cat="x")) == 2
    assert len(trace.select(name="a")) == 2
    assert len(trace.select(cat="y", name="a")) == 1


def test_jsonl_round_trip_is_lossless(tmp_path):
    trace = TraceLog()
    with trace.span("phase", cat="om", n=2):
        trace.event("decision", cat="om-provenance", pc=0x120000000)
    trace.counter("cache", hits=3, misses=1)

    path = tmp_path / "trace.jsonl"
    trace.save_jsonl(path)
    loaded = TraceLog.load_jsonl(path)
    assert loaded.events == trace.events
    # Each line is one standalone JSON object.
    lines = path.read_text().splitlines()
    assert len(lines) == len(trace.events)
    for line in lines:
        json.loads(line)


def test_chrome_trace_export_schema(tmp_path):
    trace = TraceLog()
    with trace.span("om.round0", cat="om"):
        pass
    trace.event("om.delete", cat="om-provenance", proc="main")
    trace.counter("pipeline.cache", hits=1, misses=0)

    path = tmp_path / "trace.json"
    trace.save_chrome_trace(path)
    doc = json.loads(path.read_text())
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    assert len(doc["traceEvents"]) == 3
    for event in doc["traceEvents"]:
        assert {"name", "cat", "ph", "ts", "pid", "tid"} <= set(event)
        assert event["ph"] in ("X", "i", "C")
        if event["ph"] == "X":
            assert "dur" in event


def test_span_or_null_without_trace():
    with span_or_null(None, "anything"):
        pass
    trace = TraceLog()
    with span_or_null(trace, "real", cat="om"):
        pass
    assert trace.events[0]["name"] == "real"


# -- durable sink: flush / close -----------------------------------------------


def test_sink_flush_appends_only_new_events(tmp_path):
    sink = tmp_path / "t.jsonl"
    trace = TraceLog(sink=sink)
    trace.event("first", cat="x")
    assert trace.unflushed == 1
    assert trace.flush() == 1
    assert trace.unflushed == 0
    assert trace.flush() == 0  # nothing new: nothing rewritten

    trace.event("second", cat="x")
    trace.event("third", cat="x")
    assert trace.flush() == 2
    names = [json.loads(line)["name"] for line in sink.read_text().splitlines()]
    assert names == ["first", "second", "third"]


def test_sink_close_is_final_flush_and_idempotent(tmp_path):
    sink = tmp_path / "t.jsonl"
    trace = TraceLog(sink=sink)
    trace.event("only", cat="x")
    trace.close()
    assert trace.closed
    trace.close()  # idempotent: no duplicate lines
    assert len(sink.read_text().splitlines()) == 1


def test_sink_context_manager_flushes_on_exit(tmp_path):
    sink = tmp_path / "t.jsonl"
    with TraceLog(sink=sink) as trace:
        with trace.span("work", cat="x"):
            trace.event("inside", cat="x")
    lines = [json.loads(line) for line in sink.read_text().splitlines()]
    assert [line["name"] for line in lines] == ["inside", "work"]
    assert trace.closed


def test_sink_jsonl_is_loadable_as_a_trace(tmp_path):
    sink = tmp_path / "t.jsonl"
    with TraceLog(sink=sink) as trace:
        trace.counter("q", depth=3)
        trace.event("e", cat="serve")
    loaded = TraceLog.load_jsonl(sink)
    assert loaded.events == trace.events


def test_no_sink_flush_and_close_are_noops():
    trace = TraceLog()
    trace.event("x")
    assert trace.flush() == 0
    trace.close()
    assert trace.closed
    assert trace.events  # events kept in memory regardless


# -- the trace clock -----------------------------------------------------------


def test_clock_is_monotonic_even_when_wall_clock_steps(monkeypatch):
    """Span durations come from perf_counter, not time.time: freezing
    (or stepping) the wall clock mid-span cannot garble a duration."""
    import time as time_mod

    trace = TraceLog()
    with trace.span("steady"):
        # A wall-clock step backwards of a full hour mid-span.
        frozen = time_mod.time()
        monkeypatch.setattr(time_mod, "time", lambda: frozen - 3600.0)
    assert trace.events[0]["dur"] >= 0.0


def test_now_us_advances_and_matches_span_timeline():
    a = now_us()
    b = now_us()
    assert b >= a
    trace = TraceLog()
    start = now_us()
    with trace.span("s"):
        pass
    # add_span timestamps from now_us land on the same timeline.
    assert trace.events[0]["ts"] >= start - 1.0


# -- context: default args -----------------------------------------------------


def test_context_merges_into_all_event_kinds():
    trace = TraceLog()
    with trace.context(request_id="r1"):
        with trace.span("job", cat="worker", shard=2):
            pass
        trace.event("cache.hit", cat="cache", key="k")
        trace.counter("depth", value=1)
    span, event, counter = trace.events
    assert span["args"] == {"request_id": "r1", "shard": 2}
    assert event["args"] == {"request_id": "r1", "key": "k"}
    assert counter["args"] == {"request_id": "r1", "value": 1}
    # Outside the context: no leakage.
    trace.event("after", cat="cache")
    assert "args" not in trace.events[3]


def test_context_nests_inner_wins_and_unwinds():
    trace = TraceLog()
    with trace.context(request_id="outer", phase="a"):
        with trace.context(request_id="inner"):
            trace.event("e1")
        trace.event("e2")
    assert trace.events[0]["args"] == {"request_id": "inner", "phase": "a"}
    assert trace.events[1]["args"] == {"request_id": "outer", "phase": "a"}


def test_context_is_thread_local():
    trace = TraceLog()
    ready = threading.Barrier(2)

    def other():
        ready.wait(timeout=10)
        trace.event("from-other")

    with trace.context(request_id="mine"):
        thread = threading.Thread(target=other)
        thread.start()
        ready.wait(timeout=10)
        thread.join()
    other_event = next(e for e in trace.events if e["name"] == "from-other")
    assert "args" not in other_event  # the context never crossed threads


def test_explicit_args_override_context():
    trace = TraceLog()
    with trace.context(request_id="ctx"):
        trace.event("e", request_id="explicit")
    assert trace.events[0]["args"]["request_id"] == "explicit"
