"""Regression: unreachable-code removal must follow the CFG.

The fuzzer's first catch: a nested switch (with a call in the inner
scrutinee) inside an outer switch's case body left orphaned label
blocks behind after branch simplification.  The old sweep was purely
syntactic — skip instructions after a terminator until the next label —
so a block whose *only* predecessors had been simplified away survived,
kept using vregs whose defining instructions DCE had removed, and
codegen failed with "use of undefined temporary".
"""

from repro.minicc import ir
from repro.minicc.irgen import lower_module
from repro.minicc.opt import optimize_function
from repro.minicc.parser import parse

NESTED_SWITCH = """
int ga;
int gb;
int h(int v) { return v + 1; }
int main() {
    int x = -4;
    int t = 0;
    int j = 0;
    switch (x) {
    case 2:
        switch (h(x)) {
        case 2: t ^= 1; break;
        case 3: t = 2; break;
        default: ga = 1;
        }
        break;
    default: for (j = 0; j < 3; j++) { gb += 1; }
    }
    __putint(t);
    __putint(ga);
    __putint(gb);
    return 0;
}
"""


_USE_FIELDS = ("src", "base", "a", "b", "cond", "index", "func", "arg")


def _orphan_uses(func: ir.IRFunc) -> list[str]:
    """Vregs read by some instruction but defined by none."""
    defined = set(range(len(func.params)))
    for instr in func.body:
        dst = getattr(instr, "dst", None)
        if dst is not None:
            defined.add(dst)
    problems = []
    for instr in func.body:
        uses = [
            use
            for name in _USE_FIELDS
            for use in [getattr(instr, name, None)]
            if isinstance(use, int)
        ]
        uses.extend(getattr(instr, "args", ()) or ())
        problems.extend(
            f"v{use} used by {instr!r}" for use in uses if use not in defined
        )
    return problems


def test_nested_switch_optimizes_without_orphan_uses():
    module = lower_module(parse(NESTED_SWITCH, "t.c"))
    for func in module.functions:
        optimize_function(func)
        assert not _orphan_uses(func)


def test_nested_switch_compiles_and_runs(toolchain):
    result = toolchain(NESTED_SWITCH)
    assert result.output.split() == ["0", "0", "3"]


def test_unreachable_block_after_constant_branch_is_dropped(toolchain):
    # The branch folds to always-true; the else block (and the orphan
    # label block it jumps through) must disappear, not linger with
    # dangling operands.
    source = """
    int f(int v) { return v * 2; }
    int main() {
        int t = 0;
        if (1) { t = f(3); } else { t = f(f(5)); }
        __putint(t);
        return 0;
    }
    """
    result = toolchain(source)
    assert result.output.split() == ["6"]
