"""16-bit displacement boundary behaviour.

The GAT-split and GP-relative conversion legality checks all hinge on
signed 16-bit windows: displacements of exactly ±32768/32767 in the
linker's relocation patching, the ldah-window straddle in GAT-split
groups, and the ``-32752`` GAT-floor lower bound in OM's conversion
predicates.
"""

import pytest

from repro.linker.relocate import (
    _patch_disp16,
    _split_hi_lo,
    pick_gprel_high,
)
from repro.linker.resolve import LinkError
from repro.om.transform import (
    gprel_direct_in_range,
    gprel_nullify_in_range,
    gprel_split_in_range,
)


# -- _patch_disp16 -------------------------------------------------------------


def _word_image(word: int = 0xFFFF0000) -> bytearray:
    return bytearray(word.to_bytes(4, "little"))


def test_patch_disp16_accepts_extremes():
    image = _word_image()
    _patch_disp16(image, 0, 32767, "hi edge")
    assert int.from_bytes(image, "little") & 0xFFFF == 0x7FFF
    image = _word_image()
    _patch_disp16(image, 0, -32768, "lo edge")
    assert int.from_bytes(image, "little") & 0xFFFF == 0x8000


def test_patch_disp16_preserves_upper_bits():
    image = _word_image(0xABCD0000)
    _patch_disp16(image, 0, -1, "upper bits")
    assert int.from_bytes(image, "little") == 0xABCDFFFF


@pytest.mark.parametrize("disp", [32768, -32769, 65536, -65536])
def test_patch_disp16_rejects_out_of_range(disp):
    with pytest.raises(LinkError):
        _patch_disp16(_word_image(), 0, disp, "overflow")


# -- _split_hi_lo --------------------------------------------------------------


@pytest.mark.parametrize("value", [0, 1, -1, 32767, -32768, 32768, -32769,
                                   65535, 65536, 0x12345678, -0x12345678])
def test_split_hi_lo_reconstructs(value):
    hi, lo = _split_hi_lo(value)
    assert -32768 <= lo <= 32767
    assert (hi << 16) + lo == value


def test_split_hi_lo_boundaries():
    assert _split_hi_lo(32767) == (0, 32767)
    assert _split_hi_lo(32768) == (1, -32768)
    assert _split_hi_lo(-32768) == (0, -32768)
    assert _split_hi_lo(-32769) == (-1, 32767)


# -- GAT-split ldah window selection -------------------------------------------


def test_pick_gprel_high_zero_window():
    assert pick_gprel_high([0]) == 0
    assert pick_gprel_high([-32768, 32767]) == 0  # the exact hi=0 window


def test_pick_gprel_high_next_window():
    assert pick_gprel_high([32768]) == 1
    assert pick_gprel_high([32768, 98303]) == 1  # the exact hi=1 window


def test_pick_gprel_high_negative_window():
    assert pick_gprel_high([-32769]) == -1
    assert pick_gprel_high([-98304, -32769]) == -1


def test_pick_gprel_high_rejects_window_overflow():
    with pytest.raises(ValueError):
        pick_gprel_high([-32768, 32768])  # spans 64KB + 1


def test_pick_gprel_high_rejects_straddle():
    # A tiny span can still straddle two ldah windows: 32767 needs
    # hi=0, 32769 needs hi=1, and no single hi covers both.
    with pytest.raises(ValueError):
        pick_gprel_high([32767, 32769])


def test_patch_of_picked_high_and_lows_in_range():
    """The (hi, lo) pairs pick_gprel_high implies always patch cleanly."""
    for disps in ([0, 100, 32767], [-32768, 0], [32768, 40000], [-32769, -40000]):
        hi = pick_gprel_high(disps)
        _patch_disp16(_word_image(), 0, hi, "hi")
        for disp in disps:
            _patch_disp16(_word_image(), 0, disp - (hi << 16), "lo")


# -- OM conversion predicates (-32752 GAT floor) -------------------------------


def test_nullify_lower_bound_is_gat_floor():
    assert gprel_nullify_in_range(-32752, [0])
    assert not gprel_nullify_in_range(-32753, [0])


def test_nullify_upper_bound_folds_use_offsets():
    assert gprel_nullify_in_range(0, [32767])
    assert not gprel_nullify_in_range(0, [32768])
    assert gprel_nullify_in_range(32767, [0])
    assert not gprel_nullify_in_range(32768, [0])


def test_nullify_rejects_negative_use_offsets():
    assert not gprel_nullify_in_range(0, [-1])


def test_direct_range_boundaries():
    assert gprel_direct_in_range(-32752)
    assert not gprel_direct_in_range(-32753)
    assert gprel_direct_in_range(32767)
    assert not gprel_direct_in_range(32768)


def test_split_range_boundaries():
    assert gprel_split_in_range([0, 32767])
    assert not gprel_split_in_range([0, 32768])
    assert gprel_split_in_range([40000, 40000 + 32767])
