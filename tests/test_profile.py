"""Profiler tests."""

import dataclasses

from repro.linker import link
from repro.machine import run
from repro.machine.profile import UNATTRIBUTED, profile
from repro.minicc import compile_module


def test_profile_attributes_instructions(libmc, crt0):
    source = """
    int busy(int n) {
        int i;
        int s = 0;
        for (i = 0; i < n; i++) { s += i * i; }
        return s;
    }
    int main() {
        __putint(busy(200));
        return 0;
    }
    """
    exe = link([crt0, compile_module(source, "t.o")], [libmc])
    result = profile(exe)
    assert result.run.output == f"{sum(i * i for i in range(200))}\n"
    names = [p.name for p in result.procs]
    assert names[0] == "busy"  # the hot loop dominates
    assert result.named("busy").fraction > 0.8
    assert sum(p.instructions for p in result.procs) == result.run.instructions


def test_profile_shows_library_division_cost(libmc, crt0):
    source = """
    int main() {
        int i;
        int s = 0;
        for (i = 1; i < 60; i++) { s += 100000 / i; }
        __putint(s);
        return 0;
    }
    """
    exe = link([crt0, compile_module(source, "t.o")], [libmc])
    result = profile(exe)
    # Like the real Alpha, division dominates division-heavy code.
    assert result.named("__divq").fraction > 0.5


def test_profile_matches_plain_run(libmc, crt0):
    source = "int main() { __putint(123); return 0; }"
    exe = link([crt0, compile_module(source, "t.o")], [libmc])
    plain = run(exe, timed=False)
    profiled = profile(exe)
    assert profiled.run.output == plain.output
    assert profiled.run.instructions == plain.instructions


def test_profiled_cycles_equal_plain_timed_run(libmc, crt0):
    """Profiling is layered onto the timed loop, not a separate loop:
    cycle totals must be identical, and per-procedure attribution must
    account for every cycle."""
    source = """
    int work(int n) {
        int i;
        int s = 0;
        for (i = 0; i < n; i++) { s += i * 3 + (s >> 2); }
        return s;
    }
    int main() { __putint(work(150)); return 0; }
    """
    exe = link([crt0, compile_module(source, "t.o")], [libmc])
    plain = run(exe, timed=True)
    profiled = profile(exe, timed=True)
    assert profiled.run.cycles == plain.cycles
    assert profiled.run.instructions == plain.instructions
    assert profiled.run.icache_misses == plain.icache_misses
    assert sum(p.cycles for p in profiled.procs) == plain.cycles
    assert sum(p.instructions for p in profiled.procs) == plain.instructions


def test_profiled_cycles_equal_plain_run_on_benchmark():
    from repro.experiments import build

    for variant in ("ld", "om-full"):
        exe = build.link_variant("compress", "each", variant, 1)
        plain = run(exe, timed=True)
        profiled = profile(exe, timed=True)
        assert profiled.run.cycles == plain.cycles, variant
        assert sum(p.cycles for p in profiled.procs) == plain.cycles, variant


def test_fractions_sum_to_one(libmc, crt0):
    source = "int main() { __putint(9); return 0; }"
    exe = link([crt0, compile_module(source, "t.o")], [libmc])
    result = profile(exe)
    assert abs(sum(p.fraction for p in result.procs) - 1.0) < 1e-12
    assert abs(sum(p.cycle_fraction for p in result.procs) - 1.0) < 1e-12


def test_unattributed_bucket_catches_uncovered_text(libmc, crt0):
    """Executed words outside the proc table land in an explicit bucket
    instead of silently vanishing from the totals."""
    source = "int main() { __putint(5); return 0; }"
    exe = link([crt0, compile_module(source, "t.o")], [libmc])
    # Drop proc-table entries so their executed words become strays.
    full = profile(exe)
    assert all(p.name != UNATTRIBUTED for p in full.procs)
    exe_truncated = dataclasses.replace(
        exe, procs=[p for p in exe.procs if p.name not in ("main", "__putint")]
    )
    result = profile(exe_truncated)
    stray = result.named(UNATTRIBUTED)
    assert stray.instructions > 0
    assert stray.cycles > 0
    assert sum(p.instructions for p in result.procs) == result.run.instructions
    assert sum(p.cycles for p in result.procs) == result.run.cycles
    assert abs(sum(p.fraction for p in result.procs) - 1.0) < 1e-12


def test_overhead_counters_drop_under_om_full():
    """OM-full removes executed address-calculation overhead: every PV
    load, essentially every GP-setup pair, and many GAT loads."""
    from repro.experiments import build

    base = profile(build.link_variant("compress", "each", "ld", 1))
    opt = profile(build.link_variant("compress", "each", "om-full", 1))
    assert base.overhead.gat_loads > 0
    assert base.overhead.pv_loads > 0
    assert base.overhead.gp_setup_pairs > 0
    assert opt.overhead.gat_loads < base.overhead.gat_loads
    assert opt.overhead.pv_loads == 0
    assert opt.overhead.gp_setup_pairs < base.overhead.gp_setup_pairs
    # Per-proc overhead sums to the whole-program totals.
    assert sum(p.gat_loads for p in base.procs) == base.overhead.gat_loads
    assert sum(p.pv_loads for p in base.procs) == base.overhead.pv_loads
    assert (
        sum(p.gp_setup_pairs for p in base.procs)
        == base.overhead.gp_setup_pairs
    )


def test_jit_backend_profile_identical_to_interpreter():
    """The JIT backend's attribution is the interpreter's, exactly.

    Per-procedure cycles must sum to the plain-run total under the JIT
    just as they do for the interpreter, and the whole serialized
    profile (every proc, every counter) must be byte-identical.
    """
    from repro.experiments import build
    from repro.machine.jit import clear_jit_cache

    clear_jit_cache()
    exe = build.link_variant("compress", "each", "ld", 1)
    plain = run(exe, timed=True)
    interp = profile(exe, timed=True, backend="interp")
    jit = profile(exe, timed=True, backend="jit")
    assert jit.run.cycles == plain.cycles
    assert sum(p.cycles for p in jit.procs) == plain.cycles
    assert sum(p.instructions for p in jit.procs) == plain.instructions
    assert jit.to_json() == interp.to_json()


def test_jit_backend_profile_functional_path():
    """Untimed attribution (the PGO feedback shape) is also identical."""
    from repro.experiments import build

    exe = build.link_variant("eqntott", "each", "ld", 1)
    interp = profile(exe, timed=False, backend="interp")
    jit = profile(exe, timed=False, backend="jit")
    assert jit.to_json() == interp.to_json()
    assert (
        sum(p.instructions for p in jit.procs) == jit.run.instructions
    )
