"""Profiler tests."""

from repro.linker import link
from repro.machine.profile import profile
from repro.minicc import compile_module


def test_profile_attributes_instructions(libmc, crt0):
    source = """
    int busy(int n) {
        int i;
        int s = 0;
        for (i = 0; i < n; i++) { s += i * i; }
        return s;
    }
    int main() {
        __putint(busy(200));
        return 0;
    }
    """
    exe = link([crt0, compile_module(source, "t.o")], [libmc])
    result = profile(exe)
    assert result.run.output == f"{sum(i * i for i in range(200))}\n"
    names = [p.name for p in result.procs]
    assert names[0] == "busy"  # the hot loop dominates
    assert result.named("busy").fraction > 0.8
    assert sum(p.instructions for p in result.procs) == result.run.instructions


def test_profile_shows_library_division_cost(libmc, crt0):
    source = """
    int main() {
        int i;
        int s = 0;
        for (i = 1; i < 60; i++) { s += 100000 / i; }
        __putint(s);
        return 0;
    }
    """
    exe = link([crt0, compile_module(source, "t.o")], [libmc])
    result = profile(exe)
    # Like the real Alpha, division dominates division-heavy code.
    assert result.named("__divq").fraction > 0.5


def test_profile_matches_plain_run(libmc, crt0):
    from repro.machine import run

    source = "int main() { __putint(123); return 0; }"
    exe = link([crt0, compile_module(source, "t.o")], [libmc])
    plain = run(exe, timed=False)
    profiled = profile(exe)
    assert profiled.run.output == plain.output
    assert profiled.run.instructions == plain.instructions
