"""Scale stress: many modules, forced multi-GAT, whole-pipeline checks."""

import pytest

from repro.linker import LayoutOptions, link, make_crt0
from repro.machine import run
from repro.minicc import Options, compile_module
from repro.om import OMLevel, OMOptions, om_link
from repro.om.verify import verify_executable

NMODULES = 24


@pytest.fixture(scope="module")
def many_modules():
    crt0 = make_crt0()
    modules = [crt0]
    calls = []
    protos = []
    for index in range(NMODULES):
        source = f"""
        int acc{index};
        int weight{index} = {index + 1};
        int stage{index}(int x) {{
            acc{index} = acc{index} + x * weight{index};
            return acc{index} ^ (x << {index % 7});
        }}
        """
        modules.append(compile_module(source, f"stage{index}.o", Options()))
        protos.append(f"extern int stage{index}(int x);")
        calls.append(f"v = stage{index}(v + {index});")
    main = f"""
    {' '.join(protos)}
    int main() {{
        int v = 1;
        int round;
        for (round = 0; round < 3; round++) {{
            {' '.join(calls)}
        }}
        __putint(v);
        return 0;
    }}
    """
    modules.append(compile_module(main, "main.o", Options()))
    return modules


def test_large_link_runs(many_modules, libmc):
    exe = link(many_modules, [libmc])
    result = run(exe, timed=False)
    assert result.halted and result.output.strip()
    verify_executable(exe)


def test_multi_gat_forced_and_equivalent(many_modules, libmc):
    single = run(link(many_modules, [libmc]), timed=False)
    multi_exe = link(many_modules, [libmc], options=LayoutOptions(gat_capacity=30))
    assert len(multi_exe.gp_values) >= 3
    multi = run(multi_exe, timed=False)
    assert multi.output == single.output
    verify_executable(multi_exe)


def test_om_full_on_many_modules(many_modules, libmc):
    baseline = run(link(many_modules, [libmc]), timed=False)
    result = om_link(
        many_modules, [libmc], level=OMLevel.FULL, options=OMOptions(verify=True)
    )
    optimized = run(result.executable, timed=False)
    assert optimized.output == baseline.output
    assert optimized.instructions < baseline.instructions
    # Every module contributed literals; nearly all must be gone.
    assert result.stats.frac_loads_removed > 0.8


def test_om_merges_gat_groups_after_reduction(many_modules, libmc):
    """The paper: "the GAT gets smaller, perhaps enabling a fresh round
    of the other improvements."  A program whose baseline needs several
    GAT groups can collapse to one after OM-full's GAT reduction."""
    baseline_exe = link(many_modules, [libmc], options=LayoutOptions(gat_capacity=30))
    assert len(baseline_exe.gp_values) >= 2
    baseline = run(baseline_exe, timed=False)
    result = om_link(
        many_modules,
        [libmc],
        level=OMLevel.FULL,
        options=OMOptions(gat_capacity=30, verify=True),
    )
    assert run(result.executable, timed=False).output == baseline.output
    assert len(result.executable.gp_values) <= len(baseline_exe.gp_values)
    # OM-simple cannot iterate as far: with the same capacity it must
    # stay conservative about cross-group calls it could not prove safe.
    simple = om_link(
        many_modules,
        [libmc],
        level=OMLevel.SIMPLE,
        options=OMOptions(gat_capacity=30, verify=True),
    )
    assert run(simple.executable, timed=False).output == baseline.output
