"""The metrics registry: counters, gauges, histograms, exposition."""

import json
import threading

import pytest

from repro.obs.metrics import (
    BOUNDS,
    SCHEMA,
    MetricsRegistry,
    percentile,
)
from repro.serve.metrics import LatencyHistogram


# -- percentile edge cases -----------------------------------------------------


def test_percentile_empty_is_zero():
    assert percentile([], 0.5) == 0.0
    assert percentile([], 0.0) == 0.0
    assert percentile([], 1.0) == 0.0


def test_percentile_single_sample_every_quantile():
    for q in (0.0, 0.5, 0.99, 1.0):
        assert percentile([7.0], q) == 7.0


def test_percentile_q0_and_q100_hit_the_extremes():
    samples = [1.0, 2.0, 3.0, 4.0, 5.0]
    assert percentile(samples, 0.0) == 1.0  # rank clamps to >= 1
    assert percentile(samples, 1.0) == 5.0


def test_percentile_nearest_rank():
    samples = [10.0, 20.0, 30.0, 40.0]
    assert percentile(samples, 0.5) == 20.0
    assert percentile(samples, 0.75) == 30.0
    assert percentile(samples, 0.9) == 40.0


# -- counters and gauges -------------------------------------------------------


def test_counter_monotone_and_rejects_negative():
    registry = MetricsRegistry()
    c = registry.counter("jobs_total", "jobs")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_counter_registration_is_idempotent():
    registry = MetricsRegistry()
    a = registry.counter("x_total")
    b = registry.counter("x_total")
    assert a is b
    a.inc()
    assert b.value == 1


def test_kind_conflict_is_an_error():
    registry = MetricsRegistry()
    registry.counter("thing")
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("thing")


def test_labeled_series_are_distinct():
    registry = MetricsRegistry()
    a = registry.counter("req_total", op="run")
    b = registry.counter("req_total", op="link")
    a.inc(2)
    b.inc(3)
    assert registry.get("req_total", op="run").value == 2
    assert registry.get("req_total", op="link").value == 3
    assert len(registry) == 2


def test_gauge_set_inc_dec_and_callback():
    registry = MetricsRegistry()
    g = registry.gauge("depth")
    g.set(5)
    g.inc()
    g.dec(2)
    assert g.value == 4
    state = {"n": 7}
    fn = registry.gauge("live", fn=lambda: state["n"])
    assert fn.value == 7
    state["n"] = 9
    assert fn.value == 9  # sampled at read time


def test_concurrent_increments_do_not_lose_updates():
    registry = MetricsRegistry()
    c = registry.counter("n_total")

    def spin():
        for _ in range(1000):
            c.inc()

    threads = [threading.Thread(target=spin) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value == 8000


# -- histogram bucket boundaries (satellite: LatencyHistogram tests) -----------


def test_histogram_bucket_boundary_values_land_in_their_bucket():
    """A value exactly on a bound belongs to that bucket (le = <=)."""
    hist = LatencyHistogram()
    hist.observe(BOUNDS[0])  # exactly the first bound
    assert hist.counts[0] == 1
    hist.observe(BOUNDS[3])
    assert hist.counts[3] == 1
    # Just past a bound: next bucket.
    hist.observe(BOUNDS[3] * 1.0000001)
    assert hist.counts[4] == 1


def test_histogram_overflow_bucket():
    hist = LatencyHistogram()
    hist.observe(BOUNDS[-1] * 10)  # beyond the last finite bound
    assert hist.counts[-1] == 1
    assert hist.count == 1
    # The quantile of an overflow-only histogram is the observed max.
    assert hist.quantile(0.5) == BOUNDS[-1] * 10


def test_histogram_empty_quantiles_and_dict():
    hist = LatencyHistogram()
    assert hist.quantile(0.5) == 0.0
    assert hist.to_dict() == {"count": 0}


def test_histogram_single_sample_summary():
    hist = LatencyHistogram()
    hist.observe(0.010)
    d = hist.to_dict()
    assert d["count"] == 1
    assert d["min_ms"] == d["max_ms"] == 10.0
    # Bucket estimates clamp to the observed max: never above a real
    # observation.
    assert d["p50_ms"] == d["p99_ms"] == 10.0


def test_histogram_quantiles_are_bounded_estimates():
    hist = LatencyHistogram()
    for ms in (1, 2, 3, 50, 100):
        hist.observe(ms / 1e3)
    d = hist.to_dict()
    assert d["count"] == 5
    assert 2.0 <= d["p50_ms"] <= 3.8  # within one 25% bucket of exact
    assert d["p99_ms"] <= d["max_ms"] == 100.0
    assert hist.quantile(1.0) == hist.max


# -- exposition ----------------------------------------------------------------


def _registry_with_data():
    registry = MetricsRegistry()
    registry.counter("serve_completed_total", "done").inc(3)
    registry.gauge("serve_queue_depth", "depth").set(2)
    h = registry.histogram("serve_request_seconds", "latency", op="run")
    h.observe(0.01)
    h.observe(0.5)
    return registry


def test_json_exposition_is_schema_versioned_and_serializable():
    doc = _registry_with_data().to_dict()
    assert doc["schema"] == SCHEMA
    json.dumps(doc)  # round-trippable
    by_name = {m["name"]: m for m in doc["metrics"]}
    assert by_name["serve_completed_total"]["value"] == 3
    assert by_name["serve_completed_total"]["kind"] == "counter"
    hist = by_name["serve_request_seconds"]
    assert hist["labels"] == {"op": "run"}
    assert hist["count"] == 2
    assert sum(b["count"] for b in hist["buckets"]) == 2


def test_prometheus_exposition_format():
    text = _registry_with_data().to_prometheus()
    lines = text.splitlines()
    assert "# TYPE serve_completed_total counter" in lines
    assert "serve_completed_total 3" in lines
    assert "# TYPE serve_queue_depth gauge" in lines
    assert "serve_queue_depth 2" in lines
    assert "# TYPE serve_request_seconds histogram" in lines
    # Cumulative buckets end with +Inf == _count.
    inf = [l for l in lines if 'le="+Inf"' in l]
    assert len(inf) == 1 and inf[0].endswith(" 2")
    assert 'serve_request_seconds_count{op="run"} 2' in lines
    assert text.endswith("\n")


def test_prometheus_buckets_are_cumulative():
    registry = MetricsRegistry()
    h = registry.histogram("h", "x")
    h.observe(BOUNDS[0] / 2)
    h.observe(BOUNDS[5])
    samples = list(h.samples())
    counts = [v for name, labels, v in samples if name == "h_bucket"]
    assert counts == sorted(counts)  # monotone
    assert counts[0] == 1 and counts[-1] == 2


def test_latency_histogram_status_shape_is_summary():
    hist = LatencyHistogram()
    hist.observe(0.002)
    assert set(hist.to_dict()) == {
        "count", "mean_ms", "min_ms", "max_ms", "p50_ms", "p95_ms", "p99_ms",
    }
