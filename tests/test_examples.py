"""Smoke tests: every shipped example must run cleanly."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert "quickstart.py" in names
    assert len(names) >= 3


def test_quickstart():
    out = run_example("quickstart.py")
    assert "285" in out
    assert "OM-full" in out
    assert "cycles" in out


def test_address_optimization_tour():
    out = run_example("address_optimization_tour.py")
    assert "standard link" in out
    assert "OM-simple" in out and "OM-full" in out
    assert "nop" in out  # nullified instructions visible
    assert "bsr" in out  # converted calls visible


def test_whole_program_study():
    out = run_example("whole_program_study.py", "mdljsp2")
    assert "compile-each" in out and "compile-all" in out
    assert "OM-full" in out and "GAT" in out


def test_custom_link_pass():
    out = run_example("custom_link_pass.py")
    assert "isqrt" in out and "__divq" in out
    assert "procedure entry counts" in out


def test_profile_hotspots():
    out = run_example("profile_hotspots.py", "mdljsp2")
    assert "standard link" in out and "OM-full" in out


def test_optimistic_compilation():
    out = run_example("optimistic_compilation.py")
    assert "LINK FAILED" in out
    assert "conservative rebuild output" in out
