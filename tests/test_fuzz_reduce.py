"""The ddmin reducer: shrinks to a minimal repro, never over-shrinks."""

from repro.fuzz.generate import GenConfig, GeneratedProgram, generate_program
from repro.fuzz.reduce import _is_candidate, reduce_program

MAGIC = "    t ^= 424242;"


def _synthetic_program() -> GeneratedProgram:
    """A hand-built 'divergent' program: MAGIC is the trigger line."""
    m0 = "\n".join(
        [
            "/* synthetic */",
            "extern int helper(int v);",
            "int g;",
            "int main() {",
            "    int t = 0;",
            "    t ^= 1;",
            "    g += 2;",
            MAGIC,
            "    t ^= helper(3);",
            "    __putint(t);",
            "    return 0;",
            "}",
        ]
    ) + "\n"
    m1 = "\n".join(
        [
            "/* synthetic */",
            "int helper(int v) {",
            "    return v + 1;",
            "}",
            "int unused(int v) {",
            "    return v - 1;",
            "}",
        ]
    ) + "\n"
    return GeneratedProgram(0, GenConfig(), (("m0.mc", m0), ("m1.mc", m1)))


def _contains_magic(modules) -> bool:
    return any(MAGIC in text for __, text in modules)


def test_reducer_shrinks_to_the_trigger_line():
    program = _synthetic_program()
    result = reduce_program(program, _contains_magic)
    kept = [
        line
        for __, text in result.program.modules
        for line in text.splitlines()
        if _is_candidate(line)
    ]
    # 1-minimal: the only remaining removable line is the trigger.
    assert kept == [MAGIC]
    assert result.removed_lines > 0
    # helper/unused and the whole m1 module are droppable once their
    # call sites are gone.
    assert len(result.program.modules) == 1
    assert result.removed_modules == 1


def test_reducer_refuses_uninteresting_input():
    program = _synthetic_program()
    result = reduce_program(program, lambda modules: False)
    assert result.program.modules == program.modules
    assert result.notes


def test_reducer_respects_test_budget():
    program = _synthetic_program()
    calls = []

    def predicate(modules):
        calls.append(1)
        return _contains_magic(modules)

    result = reduce_program(program, predicate, max_tests=3)
    assert len(calls) <= 3 + 1  # the initial validity probe is extra
    assert any("budget" in note for note in result.notes)
    assert _contains_magic(result.program.modules)


def test_reducer_output_stays_interesting_on_generated_programs(crt0, libmc):
    """End-to-end: minimize a real generated program against a real
    build, using 'prints the same first value' as the oracle stand-in."""
    from repro.fuzz import oracle
    from repro.linker import link
    from repro.machine import run

    program = generate_program(3, GenConfig(modules=2, stmts=4, helpers=1))

    def first_output(modules):
        candidate = GeneratedProgram(3, program.config, tuple(modules))
        objects, lib = oracle._compile_objects(candidate, "each")
        result = run(link(objects, [lib]), timed=False, max_instructions=2_000_000)
        return result.output.split()[0] if result.halted and result.output else None

    token = first_output(program.modules)
    assert token is not None

    def is_interesting(modules):
        try:
            return first_output(modules) == token
        except Exception:
            return False

    result = reduce_program(program, is_interesting)
    assert is_interesting(result.program.modules)
    assert result.removed_lines > 0
    before = sum(text.count("\n") for __, text in program.modules)
    after = sum(text.count("\n") for __, text in result.program.modules)
    assert after < before
