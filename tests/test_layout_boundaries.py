"""Linker-side layout boundaries: the 16-bit GP window cost model and
deterministic COMMON placement."""

from repro.linker.layout import (
    GP_BIAS,
    LayoutOptions,
    _window_cost,
    compute_layout,
)
from repro.linker.resolve import ResolvedInputs


def _layout(commons, weights=None):
    inputs = ResolvedInputs(modules=[], globals={}, commons=dict(commons))
    options = LayoutOptions(sort_commons=True, symbol_weights=weights)
    return compute_layout(inputs, options)


# -- GP-window predicate edges -------------------------------------------------


def test_window_cost_positive_edge():
    order = [("s", (8, 1))]
    assert _window_cost(order, 32767, 0, {"s": 1.0}) == 0.0
    assert _window_cost(order, 32768, 0, {"s": 1.0}) == 1.0


def test_window_cost_negative_edge():
    order = [("s", (8, 1))]
    assert _window_cost(order, -32752, 0, {"s": 1.0}) == 0.0
    assert _window_cost(order, -32753, 0, {"s": 1.0}) == 1.0


def test_window_cost_accumulates_through_placement():
    # The first symbol lands in the window; the second starts past
    # gp + 32767 (= 65519 from a zero base) and is charged.
    order = [("a", (70000, 8)), ("b", (40000, 8))]
    weights = {"a": 1.0, "b": 10.0}
    assert _window_cost(order, 0, GP_BIAS, weights) == 10.0


# -- frequency-sorted COMMON placement -----------------------------------------


def test_hot_symbol_pulled_into_window():
    """Size sort strands the big hot symbol out of the window; the
    density order pays less under the cost model and must win."""
    commons = {
        "cold_a": (40000, 8),
        "cold_b": (40000, 8),
        "hot": (50000, 8),
    }
    layout = _layout(commons, weights={"hot": 1000.0})
    assert layout.hot_commons
    gp = layout.groups[-1].gp
    assert -32752 <= layout.common_addr["hot"] - gp <= 32767
    cold = _layout(commons)  # no weights: the paper's size sort
    assert not cold.hot_commons
    assert not -32752 <= cold.common_addr["hot"] - gp <= 32767


def test_size_sort_kept_unless_strictly_better():
    """When every placement is in-window the costs tie and the size
    sort stays (never-worse guarantee: deviate only on strict win)."""
    commons = {"a": (16, 8), "b": (8, 8)}
    hot = _layout(commons, weights={"a": 100.0})
    cold = _layout(commons)
    assert not hot.hot_commons
    assert hot.common_addr == cold.common_addr
    assert cold.common_addr["b"] < cold.common_addr["a"]  # size order


# -- deterministic tie-break ---------------------------------------------------


def test_equal_size_commons_insertion_order_independent():
    forward = {"b": (16, 8), "a": (16, 8), "c": (16, 8)}
    backward = dict(reversed(list(forward.items())))
    first = _layout(forward).common_addr
    second = _layout(backward).common_addr
    assert first == second
    # Ties break by name, so equal (size, align) symbols sort a < b < c.
    assert first["a"] < first["b"] < first["c"]


def test_tie_break_orders_by_size_then_align_then_name():
    commons = {"z": (8, 16), "m": (8, 8), "a": (16, 8)}
    addr = _layout(commons).common_addr
    assert addr["m"] < addr["z"] < addr["a"]
