"""Object file container, serialization, and archive tests."""

import pytest
from hypothesis import given, strategies as st

from repro.objfile import (
    Archive,
    Binding,
    ObjectFile,
    ObjectFormatError,
    ProcInfo,
    Relocation,
    RelocType,
    Section,
    SectionKind,
    Symbol,
    SymbolKind,
    dump_object,
    load_object,
)


def make_module(name="m.o"):
    obj = ObjectFile(name)
    text = obj.section(SectionKind.TEXT)
    text.append(bytes(16))
    obj.add_symbol(
        Symbol(
            "f",
            SymbolKind.PROC,
            Binding.GLOBAL,
            SectionKind.TEXT,
            0,
            16,
            proc=ProcInfo(uses_gp=True, frame_size=32),
        )
    )
    data = obj.section(SectionKind.DATA)
    data.append((123).to_bytes(8, "little"))
    obj.add_symbol(Symbol("v", SymbolKind.OBJECT, Binding.GLOBAL, SectionKind.DATA, 0, 8))
    obj.add_symbol(Symbol("g", SymbolKind.UNDEF))
    obj.relocations.append(
        Relocation(RelocType.LITERAL, SectionKind.TEXT, 4, "g", 0)
    )
    obj.relocations.append(
        Relocation(RelocType.LITUSE, SectionKind.TEXT, 8, None, 4, 1)
    )
    return obj


def test_section_quad_io():
    sec = Section(SectionKind.DATA)
    sec.append(bytes(16))
    sec.write_quad(8, 0x1122334455667788)
    assert sec.read_quad(8) == 0x1122334455667788


def test_section_negative_quad_wraps():
    sec = Section(SectionKind.DATA)
    sec.append(bytes(8))
    sec.write_quad(0, -1)
    assert sec.read_quad(0) == (1 << 64) - 1


def test_bss_reserve_aligns():
    sec = Section(SectionKind.BSS)
    sec.reserve(3)
    offset = sec.reserve(8, alignment=16)
    assert offset % 16 == 0
    assert sec.size == offset + 8


def test_bss_rejects_bytes():
    sec = Section(SectionKind.BSS)
    with pytest.raises(ValueError):
        sec.append(b"x")


def test_find_symbol_prefers_definition():
    obj = make_module()
    obj.add_symbol(Symbol("f", SymbolKind.UNDEF))
    assert obj.find_symbol("f").is_defined


def test_defined_and_undefined_partition():
    obj = make_module()
    assert {s.name for s in obj.defined_globals()} == {"f", "v"}
    assert {s.name for s in obj.undefined()} == {"g"}


def test_literal_pool_dedups():
    obj = make_module()
    obj.relocations.append(Relocation(RelocType.LITERAL, SectionKind.TEXT, 12, "g", 0))
    assert obj.literal_pool() == [("g", 0)]
    assert obj.lita_size == 8


def test_validate_catches_duplicate_definition():
    obj = make_module()
    obj.add_symbol(Symbol("f", SymbolKind.PROC, Binding.GLOBAL, SectionKind.TEXT, 0, 4))
    with pytest.raises(ObjectFormatError):
        obj.validate()


def test_validate_catches_unknown_reloc_symbol():
    obj = make_module()
    obj.relocations.append(Relocation(RelocType.BRADDR, SectionKind.TEXT, 0, "nope"))
    with pytest.raises(ObjectFormatError):
        obj.validate()


def test_serialize_roundtrip():
    obj = make_module()
    back = load_object(dump_object(obj))
    assert back.name == obj.name
    assert back.section(SectionKind.TEXT).data == obj.section(SectionKind.TEXT).data
    assert [s.name for s in back.symbols] == [s.name for s in obj.symbols]
    f = back.find_symbol("f")
    assert f.proc is not None and f.proc.frame_size == 32
    assert len(back.relocations) == 2
    assert back.relocations[0].type is RelocType.LITERAL


def test_load_rejects_bad_magic():
    with pytest.raises(ObjectFormatError):
        load_object(b"XXXX" + bytes(100))


def test_archive_index_and_roundtrip():
    lib = Archive("libmc")
    member = make_module("div.o")
    lib.add(member)
    assert lib.member_defining("f") is member
    assert lib.member_defining("nope") is None
    back = Archive.from_bytes("libmc", lib.to_bytes())
    assert len(back) == 1
    assert back.member_defining("f").name == "div.o"


def test_archive_first_definition_wins():
    lib = Archive("lib")
    first = make_module("a.o")
    second = make_module("b.o")
    lib.add(first)
    lib.add(second)
    assert lib.member_defining("f") is first


# -- property-based serialization round-trip --------------------------------

_names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=0x7F),
    min_size=1,
    max_size=12,
)


@given(
    name=_names,
    payload=st.binary(max_size=64).map(lambda b: b + bytes(-len(b) % 4)),
    offsets=st.lists(st.integers(0, 60), max_size=5),
)
def test_serialize_roundtrip_property(name, payload, offsets):
    obj = ObjectFile(name + ".o")
    obj.section(SectionKind.TEXT).append(payload)
    obj.add_symbol(Symbol("sym", SymbolKind.COMMON, size=24, alignment=16))
    for offset in offsets:
        obj.relocations.append(
            Relocation(RelocType.LITUSE, SectionKind.TEXT, offset, None, offset, 2)
        )
    back = load_object(dump_object(obj))
    assert back.name == obj.name
    assert bytes(back.section(SectionKind.TEXT).data) == payload
    assert len(back.relocations) == len(offsets)
    assert back.symbols[0].kind is SymbolKind.COMMON
    assert back.symbols[0].alignment == 16
