"""Generator validity: every generated program is a usable oracle input.

The fuzzer is only as good as its generator's guarantees: programs
must parse, compile in both modes, terminate within the fuel budget
under every link variant, and regenerate byte-for-byte from their
(seed, config) — that last property is what makes the corpus
replayable.
"""

import dataclasses
import random

import pytest

from repro.fuzz.generate import (
    GAT_WINDOW_BYTES,
    WORD,
    GenConfig,
    RichProgramGen,
    generate_program,
    random_config,
)
from repro.fuzz.oracle import MODES, VARIANTS, evaluate_program

SEEDS = (0, 1, 2, 3, 4)


def test_generation_is_deterministic():
    for seed in SEEDS:
        first = generate_program(seed)
        second = generate_program(seed)
        assert first.modules == second.modules


def test_distinct_seeds_distinct_programs():
    sources = {generate_program(seed).modules for seed in SEEDS}
    assert len(sources) == len(SEEDS)


def test_configs_shape_the_program():
    lean = GenConfig(modules=2, helpers=1, switches=False, pointers=False,
                     recursion=False, while_loops=False, dead_procs=False)
    rich = GenConfig(modules=4, helpers=3, big_commons=True)
    assert len(generate_program(5, lean).modules) == 2
    assert len(generate_program(5, rich).modules) == 4
    lean_text = "\n".join(generate_program(5, lean).sources)
    assert "switch" not in lean_text
    assert "dead" not in lean_text


def test_big_commons_straddle_gat_window():
    program = generate_program(9, GenConfig(big_commons=True))
    text = "\n".join(program.sources)
    sizes = []
    for line in text.splitlines():
        if line.startswith("int big") and "[" in line:
            sizes.append(int(line.split("[")[1].split("]")[0]) * WORD)
    assert sizes, "big_commons should emit oversized commons"
    assert any(size >= GAT_WINDOW_BYTES for size in sizes)


def test_mutated_and_random_configs_stay_valid():
    rng = random.Random(0)
    config = GenConfig()
    for __ in range(50):
        config = config.mutated(rng)
        assert 1 <= config.modules <= 5
        assert config.fuel > 0
    for __ in range(20):
        config = random_config(rng)
        program = generate_program(rng.randrange(1000), config)
        assert len(program.modules) == config.modules
        assert f"int __fuel = {config.fuel};" in program.modules[0][1]


@pytest.mark.parametrize("seed", SEEDS)
def test_generated_programs_pass_the_whole_matrix(seed):
    """Compiles everywhere, halts everywhere, and all cells agree."""
    report = evaluate_program(generate_program(seed))
    assert not report.diverged, report.summary()
    assert len(report.cells) == len(MODES) * len(VARIANTS)
    assert all(cell.halted for cell in report.cells.values())
    assert report.coverage, "OM links should fire provenance events"


def test_dataclass_roundtrip_matches_corpus_meta():
    config = dataclasses.replace(GenConfig(), fuel=123, big_commons=True)
    assert GenConfig(**dataclasses.asdict(config)) == config


def test_legacy_programgen_reexported():
    # tests/test_differential.py and the symbolic round-trip property
    # import ProgramGen from the fuzz package now.
    from repro.fuzz import ProgramGen

    main_src, helper_src = ProgramGen(7).module_pair()
    assert "int main()" in main_src
    assert "twist" in helper_src


def test_decaf_generation_is_deterministic():
    for seed in SEEDS:
        config = GenConfig(language="decaf")
        assert (
            generate_program(seed, config).modules
            == generate_program(seed, config).modules
        )


def test_decaf_program_shape():
    program = generate_program(5, GenConfig(modules=3, language="decaf"))
    assert len(program.modules) == 3
    assert all(name.endswith(".dcf") for name, __ in program.modules)
    text = "\n".join(program.sources)
    assert "extern class" in text  # hierarchies cross translation units
    assert "extends" in text
    assert "new " in text


def test_mixed_program_has_one_minic_kernel_unit():
    program = generate_program(5, GenConfig(modules=3, language="mixed"))
    assert len(program.modules) == 3
    suffixes = [name.rsplit(".", 1)[1] for name, __ in program.modules]
    assert suffixes.count("mc") == 1 and suffixes[-1] == "mc"
    decaf_text = "\n".join(t for n, t in program.modules if n.endswith(".dcf"))
    assert "extern int kq0(int a, int b);" in decaf_text
    assert "extern int mixg_0;" in decaf_text


def test_decaf_big_commons_straddle_gat_window():
    program = generate_program(9, GenConfig(language="decaf", big_commons=True))
    text = "\n".join(program.sources)
    sizes = [
        int(line.split("[")[1].split("]")[0]) * WORD
        for line in text.splitlines()
        if line.startswith("int dbig") and "[" in line
    ]
    # The straddler is planned within a few words of the boundary (on
    # either side), so the sorted-placement cut lands inside the run.
    assert sizes
    assert any(abs(size - GAT_WINDOW_BYTES) <= 6 * WORD for size in sizes)


@pytest.mark.parametrize("language", ["decaf", "mixed"])
def test_decaf_programs_pass_the_whole_matrix(language):
    """Cross-language oracle cells: all variants and backends agree."""
    report = evaluate_program(generate_program(1, GenConfig(language=language)))
    assert not report.diverged, report.summary()
    assert len(report.cells) == len(MODES) * len(VARIANTS)
    assert all(cell.halted for cell in report.cells.values())


def test_language_survives_config_roundtrip():
    config = GenConfig(language="mixed")
    assert GenConfig(**dataclasses.asdict(config)).language == "mixed"
    # Old corpus metadata (no language key) must deserialize to minic.
    legacy = dataclasses.asdict(GenConfig())
    del legacy["language"]
    assert GenConfig(**legacy).language == "minic"


def test_random_config_languages_palette():
    rng = random.Random(3)
    langs = {random_config(rng, ("minic", "decaf", "mixed")).language
             for __ in range(40)}
    assert langs == {"minic", "decaf", "mixed"}
    assert random_config(rng).language == "minic"
    assert random_config(rng, ("decaf",)).language == "decaf"


def test_mutation_preserves_language():
    rng = random.Random(0)
    config = GenConfig(language="decaf")
    for __ in range(30):
        config = config.mutated(rng)
        assert config.language == "decaf"


def test_rich_generator_reserves_loop_counters():
    # i/j/k are for-loop counters; the statement generator must never
    # assign them or loops could be cut short or never terminate.
    gen = RichProgramGen(11, GenConfig())
    program = gen.generate()
    for __, text in program.modules:
        for line in text.splitlines():
            stripped = line.strip()
            for counter in ("i", "j", "k"):
                assert not stripped.startswith(f"{counter} =")
                assert not stripped.startswith(f"{counter} ^=")
