"""OM edge cases: addended literals, shared literals, mixed uses."""

from repro.linker import link
from repro.machine import run
from repro.minicc import Options, compile_module
from repro.om import OMLevel, OMOptions, om_link


def check_all_levels(objs, libmc, expected=None):
    base = run(link(objs, [libmc]), timed=False)
    if expected is not None:
        assert base.output == expected
    for level in (OMLevel.SIMPLE, OMLevel.FULL):
        result = om_link(objs, [libmc], level=level, options=OMOptions(verify=True))
        got = run(result.executable, timed=False)
        assert got.output == base.output, level
    return base.output


def test_constant_indexed_array_uses(libmc, crt0):
    """Literal with several uses at different displacements (constant
    indices fold into the use instructions)."""
    source = """
    int table[10];
    int main() {
        table[0] = 5;
        table[3] = 7;
        table[9] = 11;
        __putint(table[0] + table[3] + table[9]);
        return 0;
    }
    """
    objs = [crt0, compile_module(source, "m.o", Options(optimize=True))]
    check_all_levels(objs, libmc, "23\n")


def test_same_literal_loaded_twice_in_one_block(libmc, crt0):
    source = """
    int g;
    int main() {
        g = 4;
        g = g * g + g;
        __putint(g);
        return 0;
    }
    """
    objs = [crt0, compile_module(source, "m.o")]
    check_all_levels(objs, libmc, "20\n")


def test_mixed_escape_and_base_uses(libmc, crt0):
    """One literal whose value both indexes memory and escapes into
    arithmetic — only conversion (never nullification) is legal."""
    source = """
    int arr[8];
    int main() {
        int i;
        int addr_parity;
        for (i = 0; i < 8; i++) { arr[i] = i; }
        addr_parity = (arr & 0xFF) == (arr & 0xFF);   /* escape: address math */
        __putint(arr[5] + addr_parity);
        return 0;
    }
    """
    objs = [crt0, compile_module(source, "m.o")]
    check_all_levels(objs, libmc, "6\n")


def test_call_in_loop_with_live_literal(libmc, crt0):
    """A literal-loaded address spilled across a call and reused after:
    the spill round-trip must not confuse nullification."""
    source = """
    int box[2];
    extern int imax(int a, int b);
    int main() {
        int i;
        for (i = 0; i < 3; i++) {
            box[0] = imax(box[0], i * 10);
            box[1] = box[0] + imax(i, 2);
        }
        __putint(box[0]);
        __putint(box[1]);
        return 0;
    }
    """
    objs = [crt0, compile_module(source, "m.o")]
    check_all_levels(objs, libmc, "20\n22\n")


def test_deep_call_chain_gp_discipline(libmc, crt0):
    """Four levels of user calls interleaved with library calls: GP
    must stay correct through every optimized convention."""
    source = """
    int trace;
    extern int iabs(int x);
    int d(int x) { trace = trace * 10 + 4; return iabs(x) + 1; }
    int c(int x) { trace = trace * 10 + 3; return d(x) * 2; }
    int b(int x) { trace = trace * 10 + 2; return c(x) + d(-x); }
    int a(int x) { trace = trace * 10 + 1; return b(x) - c(x); }
    int main() {
        __putint(a(-5));
        __putint(trace);
        return 0;
    }
    """
    objs = [crt0, compile_module(source, "m.o")]
    check_all_levels(objs, libmc)


def test_switch_dispatch_through_om_full_sched(libmc, crt0):
    """Jump tables must survive code motion, deletion, and alignment."""
    source = """
    int total;
    int step(int op, int v) {
        switch (op) {
            case 0: return v + 1;
            case 1: return v * 2;
            case 2: return v - 3;
            case 3: return v / 2;
            case 4: return v % 5;
            case 5: return -v;
        }
        return 0;
    }
    int main() {
        int i;
        for (i = 0; i < 24; i++) {
            total = total + step(i % 6, total + i);
        }
        __putint(total);
        return 0;
    }
    """
    objs = [crt0, compile_module(source, "m.o")]
    base = run(link(objs, [libmc]), timed=False)
    sched = om_link(
        objs, [libmc], level=OMLevel.FULL,
        options=OMOptions(schedule=True, verify=True),
    )
    assert run(sched.executable, timed=False).output == base.output


def test_zero_literal_program(libmc, crt0):
    """A program with no globals at all still round-trips every level."""
    source = """
    int main() {
        int a = 6;
        int b = 7;
        __putint(a * b);
        return 0;
    }
    """
    objs = [crt0, compile_module(source, "m.o")]
    check_all_levels(objs, libmc, "42\n")
