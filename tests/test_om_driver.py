"""OM driver option and invariant tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.encoding import decode_stream
from repro.linker import link
from repro.machine import run
from repro.minicc import compile_module
from repro.om import OMLevel, OMOptions, om_link


def simple_objs(crt0, libmc):
    return [
        crt0,
        compile_module(
            """
            int g;
            extern int imin(int a, int b);
            int main() {
                g = imin(7, 3) + imin(9, 8);
                __putint(g);
                return 0;
            }
            """,
            "m.o",
        ),
    ]


def test_default_options():
    options = OMOptions()
    assert options.schedule is False
    assert options.rounds == 3
    assert options.sort_commons is True
    assert options.convert_escaped is False
    assert options.remove_dead_procs is False
    assert options.entry == "__start"


def test_executable_branches_resolve_to_instruction_boundaries(libmc, crt0):
    objs = simple_objs(crt0, libmc)
    result = om_link(objs, [libmc], level=OMLevel.FULL)
    exe = result.executable
    instrs = decode_stream(exe.text_bytes())
    nwords = len(instrs)
    base = exe.segments[0].vaddr
    for index, instr in enumerate(instrs):
        if instr.is_branch:
            target = index + 1 + instr.disp
            assert 0 <= target < nwords, f"branch at {base + 4 * index:#x}"


def test_om_rounds_bounded(libmc, crt0):
    objs = simple_objs(crt0, libmc)
    one = om_link(objs, [libmc], level=OMLevel.FULL, options=OMOptions(rounds=1))
    many = om_link(objs, [libmc], level=OMLevel.FULL, options=OMOptions(rounds=8))
    assert run(one.executable).output == run(many.executable).output
    assert many.stats.gat_bytes_after <= one.stats.gat_bytes_after


def test_gat_never_contains_unreferenced_entries(libmc, crt0):
    """Every GAT slot in OM-full output corresponds to a surviving
    literal relocation (GAT reduction is exact)."""
    objs = simple_objs(crt0, libmc)
    result = om_link(objs, [libmc], level=OMLevel.FULL)
    remaining_literals = result.stats.after.addr_loads
    assert result.stats.gat_bytes_after <= 8 * max(remaining_literals, 0) + 0


def test_custom_entry_symbol(libmc, crt0):
    start2 = compile_module(
        """
        int begin2() { __putint(77); __halt(); return 0; }
        """,
        "alt.o",
    )
    result = om_link(
        [start2], [libmc], level=OMLevel.FULL, options=OMOptions(entry="begin2")
    )
    assert run(result.executable).output == "77\n"


def test_simple_and_full_idempotent_behaviour(libmc, crt0):
    objs = simple_objs(crt0, libmc)
    baseline = run(link(objs, [libmc])).output
    for _ in range(2):
        for level in (OMLevel.SIMPLE, OMLevel.FULL):
            assert (
                run(om_link(objs, [libmc], level=level).executable).output
                == baseline
            )


@settings(max_examples=8, deadline=None)
@given(
    schedule=st.booleans(),
    sort_commons=st.booleans(),
    convert_escaped=st.booleans(),
    gc=st.booleans(),
)
def test_option_matrix_preserves_behaviour(
    schedule, sort_commons, convert_escaped, gc, libmc, crt0
):
    objs = simple_objs(crt0, libmc)
    expected = run(link(objs, [libmc])).output
    result = om_link(
        objs,
        [libmc],
        level=OMLevel.FULL,
        options=OMOptions(
            schedule=schedule,
            sort_commons=sort_commons,
            convert_escaped=convert_escaped,
            remove_dead_procs=gc,
        ),
    )
    assert run(result.executable).output == expected
