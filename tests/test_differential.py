"""Differential testing: random programs, every build variant agrees.

A seeded generator produces small, guaranteed-terminating MiniC
programs (bounded loops, guarded division).  Each is built compile-each
and compile-all and linked with the standard linker, OM-simple,
OM-full, and OM-full+sched; all eight executables must print the same
numbers.  This cross-checks constant folding vs. machine semantics,
inlining, scheduling, and every OM transformation at once.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.linker import link
from repro.machine import run
from repro.minicc import compile_all, compile_module
from repro.om import OMLevel, OMOptions, om_link


class ProgramGen:
    """Generates a two-module program from a seed."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        self.depth = 0

    def expr(self, depth: int = 0) -> str:
        rng = self.rng
        if depth > 2 or rng.random() < 0.35:
            return rng.choice(
                [
                    str(rng.randint(-100, 100)),
                    str(rng.randint(-(2**40), 2**40)),
                    "ga",
                    "gb",
                    "arr[%d]" % rng.randint(0, 7),
                    "x",
                    "y",
                ]
            )
        op = rng.choice(["+", "-", "*", "&", "|", "^", "<", "<=", "==", "!="])
        if rng.random() < 0.15:
            # Guarded division: denominator forced odd (nonzero).
            return f"(({self.expr(depth + 1)}) / (({self.expr(depth + 1)}) | 1))"
        if rng.random() < 0.1:
            return f"(({self.expr(depth + 1)}) %% (({self.expr(depth + 1)}) | 1))".replace("%%", "%")
        if rng.random() < 0.15:
            shift = rng.randint(0, 8)
            direction = rng.choice(["<<", ">>"])
            return f"(({self.expr(depth + 1)}) {direction} {shift})"
        if rng.random() < 0.2:
            return f"twist({self.expr(depth + 1)})"
        return f"(({self.expr(depth + 1)}) {op} ({self.expr(depth + 1)}))"

    def stmt(self, depth: int = 0) -> str:
        rng = self.rng
        roll = rng.random()
        if roll < 0.35:
            target = rng.choice(["ga", "gb", "x", "y", f"arr[{rng.randint(0, 7)}]"])
            op = rng.choice(["=", "+=", "-=", "^="])
            return f"{target} {op} {self.expr()};"
        if roll < 0.5:
            return f"__putint({self.expr()});"
        if roll < 0.7 and depth < 2:
            body = " ".join(self.stmt(depth + 1) for __ in range(rng.randint(1, 3)))
            other = (
                f" else {{ {self.stmt(depth + 1)} }}" if rng.random() < 0.5 else ""
            )
            return f"if ({self.expr()}) {{ {body} }}{other}"
        if roll < 0.85 and depth < 2:
            bound = rng.randint(1, 6)
            var = ["i", "j", "k"][depth]  # distinct per depth: nested
            # loops sharing a counter would never terminate
            body = " ".join(self.stmt(depth + 1) for __ in range(rng.randint(1, 2)))
            return f"for ({var} = 0; {var} < {bound}; {var}++) {{ {body} }}"
        return f"y = twist({self.expr()});"

    def module_pair(self) -> tuple[str, str]:
        rng = self.rng
        body = " ".join(self.stmt() for __ in range(rng.randint(3, 7)))
        main = f"""
        int ga;
        int gb = {rng.randint(-50, 50)};
        int arr[8];
        extern int twist(int v);
        int main() {{
            int x = {rng.randint(-10, 10)};
            int y = 1;
            int i;
            int j;
            int k;
            {body}
            __putint(ga); __putint(gb); __putint(x); __putint(y);
            for (i = 0; i < 8; i++) {{ __putint(arr[i]); }}
            return 0;
        }}
        """
        helper = f"""
        int tcount;
        int twist(int v) {{
            tcount = tcount + 1;
            return (v ^ {rng.randint(1, 99)}) + (v >> 3) - tcount;
        }}
        """
        return main, helper


def build_all_variants(main_src: str, helper_src: str, crt0, libmc):
    outputs = {}
    each = [
        crt0,
        compile_module(main_src, "main.o"),
        compile_module(helper_src, "helper.o"),
    ]
    all_unit = [
        crt0,
        compile_all([("main.c", main_src), ("helper.c", helper_src)], "all.o"),
    ]
    for mode, objs in (("each", each), ("all", all_unit)):
        outputs[f"{mode}/ld"] = run(link(objs, [libmc]), timed=False, max_instructions=5_000_000).output
        for level in (OMLevel.SIMPLE, OMLevel.FULL):
            result = om_link(objs, [libmc], level=level)
            outputs[f"{mode}/{level.value}"] = run(
                result.executable, timed=False, max_instructions=5_000_000
            ).output
        sched = om_link(
            objs, [libmc], level=OMLevel.FULL, options=OMOptions(schedule=True)
        )
        outputs[f"{mode}/sched"] = run(
            sched.executable, timed=False, max_instructions=5_000_000
        ).output
    return outputs


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_random_programs_all_variants_agree(seed, crt0, libmc):
    main_src, helper_src = ProgramGen(seed).module_pair()
    outputs = build_all_variants(main_src, helper_src, crt0, libmc)
    distinct = set(outputs.values())
    assert len(distinct) == 1, (
        f"seed {seed}: variants diverge\n"
        + "\n".join(f"{k}: {v.split()}" for k, v in outputs.items())
        + f"\nsource:\n{main_src}"
    )


@pytest.mark.parametrize("seed", [1, 7, 42, 1994, 64 * 64])
def test_pinned_seeds_agree(seed, crt0, libmc):
    main_src, helper_src = ProgramGen(seed).module_pair()
    outputs = build_all_variants(main_src, helper_src, crt0, libmc)
    assert len(set(outputs.values())) == 1
