"""Differential testing: random programs, every build variant agrees.

A seeded generator produces small, guaranteed-terminating MiniC
programs (bounded loops, guarded division).  Each is built compile-each
and compile-all and linked with the standard linker, OM-simple,
OM-full, and OM-full+sched; all eight executables must print the same
numbers.  This cross-checks constant folding vs. machine semantics,
inlining, scheduling, and every OM transformation at once.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fuzz.generate import ProgramGen
from repro.linker import link
from repro.machine import run
from repro.minicc import compile_all, compile_module
from repro.om import OMLevel, OMOptions, om_link


def build_all_variants(main_src: str, helper_src: str, crt0, libmc):
    outputs = {}
    each = [
        crt0,
        compile_module(main_src, "main.o"),
        compile_module(helper_src, "helper.o"),
    ]
    all_unit = [
        crt0,
        compile_all([("main.c", main_src), ("helper.c", helper_src)], "all.o"),
    ]
    for mode, objs in (("each", each), ("all", all_unit)):
        outputs[f"{mode}/ld"] = run(link(objs, [libmc]), timed=False, max_instructions=5_000_000).output
        for level in (OMLevel.SIMPLE, OMLevel.FULL):
            result = om_link(objs, [libmc], level=level)
            outputs[f"{mode}/{level.value}"] = run(
                result.executable, timed=False, max_instructions=5_000_000
            ).output
        sched = om_link(
            objs, [libmc], level=OMLevel.FULL, options=OMOptions(schedule=True)
        )
        outputs[f"{mode}/sched"] = run(
            sched.executable, timed=False, max_instructions=5_000_000
        ).output
    return outputs


@settings(max_examples=15)
@given(seed=st.integers(0, 10_000))
def test_random_programs_all_variants_agree(seed, crt0, libmc):
    main_src, helper_src = ProgramGen(seed).module_pair()
    outputs = build_all_variants(main_src, helper_src, crt0, libmc)
    distinct = set(outputs.values())
    assert len(distinct) == 1, (
        f"seed {seed}: variants diverge\n"
        + "\n".join(f"{k}: {v.split()}" for k, v in outputs.items())
        + f"\nsource:\n{main_src}"
    )


@pytest.mark.parametrize("seed", [1, 7, 42, 1994, 64 * 64])
def test_pinned_seeds_agree(seed, crt0, libmc):
    main_src, helper_src = ProgramGen(seed).module_pair()
    outputs = build_all_variants(main_src, helper_src, crt0, libmc)
    assert len(set(outputs.values())) == 1
