"""Executable structural-verification tests."""

import pytest

from repro.benchsuite import build_program
from repro.linker import link, make_crt0
from repro.minicc import compile_module
from repro.om import OMLevel, OMOptions, om_link
from repro.om.verify import VerificationError, verify_executable


def test_standard_link_verifies(libmc, crt0):
    obj = compile_module(
        "int g; extern int imin(int a, int b);"
        "int main() { g = imin(1, 2); __putint(g); return 0; }",
        "m.o",
    )
    report = verify_executable(link([crt0, obj], [libmc]))
    assert report.ok
    assert report.instructions > 0
    assert report.calls >= 2  # crt0->main, main->imin
    assert report.gat_entries == link([crt0, obj], [libmc]).gat_size // 8


@pytest.mark.parametrize("level", [OMLevel.NONE, OMLevel.SIMPLE, OMLevel.FULL])
def test_om_outputs_verify(level, libmc, crt0):
    objs = [crt0] + build_program("eqntott", "each", scale=1)
    result = om_link(objs, [libmc], level=level)
    report = verify_executable(result.executable)
    assert report.ok, report.problems


def test_om_sched_gc_output_verifies(libmc, crt0):
    objs = [crt0] + build_program("li", "each", scale=1)
    result = om_link(
        objs,
        [libmc],
        level=OMLevel.FULL,
        options=OMOptions(schedule=True, remove_dead_procs=True),
    )
    report = verify_executable(result.executable)
    assert report.ok, report.problems


def test_verifier_catches_corruption(libmc, crt0):
    obj = compile_module("int main() { __putint(1); return 0; }", "m.o")
    exe = link([crt0, obj], [libmc])
    # Corrupt one text word into an unassigned opcode.
    data = bytearray(exe.segments[0].data)
    data[8:12] = (0x07 << 26).to_bytes(4, "little")
    from repro.linker.executable import Segment

    exe.segments[0] = Segment(exe.segments[0].vaddr, bytes(data))
    with pytest.raises(VerificationError, match="undecodable"):
        verify_executable(exe)
    report = verify_executable(exe, strict=False)
    assert not report.ok


def test_verifier_catches_bad_gat_entry(libmc, crt0):
    obj = compile_module("int g; int main() { g = 1; return g; }", "m.o")
    exe = link([crt0, obj], [libmc])
    data = bytearray(exe.segments[1].data)
    data[0:8] = (0xDEAD_BEEF_0000).to_bytes(8, "little")
    from repro.linker.executable import Segment

    exe.segments[1] = Segment(exe.segments[1].vaddr, bytes(data))
    report = verify_executable(exe, strict=False)
    assert any("GAT slot" in p for p in report.problems)
