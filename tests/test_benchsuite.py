"""Benchmark-suite integration: the strongest whole-system check.

For every program, every build version (compile-each / compile-all) and
every link variant (standard, OM-none, OM-simple, OM-full,
OM-full+sched) must produce bit-identical console output.  Workloads
are shrunk via the SCALE override so the full matrix stays fast.
"""

import pytest

from repro.benchsuite import PROGRAMS, build_program, build_stdlib, program_sources
from repro.benchsuite.suite import apply_scale
from repro.linker import link, make_crt0
from repro.machine import run
from repro.om import OMLevel, OMOptions, om_link

SCALE = 1


@pytest.fixture(scope="module")
def lib():
    return build_stdlib()


@pytest.fixture(scope="module")
def crt():
    return make_crt0()


def test_program_list_matches_paper():
    # SPEC92 minus gcc = 19 programs.
    assert len(PROGRAMS) == 19
    assert "gcc" not in PROGRAMS


def test_every_program_has_multiple_modules():
    for name in PROGRAMS:
        sources = program_sources(name)
        assert len(sources) >= 2, f"{name} should be multi-module"
        assert sources[0][0] == "main.mc"


def test_apply_scale_replaces_constant():
    text = "int SCALE = 6;\nint main() { return SCALE; }"
    assert "int SCALE = 2;" in apply_scale(text, 2)
    assert apply_scale(text, None) == text


@pytest.mark.parametrize("name", PROGRAMS)
def test_all_variants_preserve_output(name, lib, crt):
    each = [crt] + build_program(name, "each", scale=SCALE)
    all_unit = [crt] + build_program(name, "all", scale=SCALE)

    reference = None
    for objs, mode in ((each, "each"), (all_unit, "all")):
        outputs = {}
        outputs["ld"] = run(link(objs, [lib]), timed=False).output
        for level in (OMLevel.NONE, OMLevel.SIMPLE, OMLevel.FULL):
            result = om_link(objs, [lib], level=level)
            outputs[level.value] = run(result.executable, timed=False).output
        sched = om_link(
            objs, [lib], level=OMLevel.FULL, options=OMOptions(schedule=True)
        )
        outputs["full+sched"] = run(sched.executable, timed=False).output

        distinct = set(outputs.values())
        assert len(distinct) == 1, f"{name}/{mode}: outputs diverge: {outputs}"
        if reference is None:
            reference = distinct.pop()
        else:
            assert distinct.pop() == reference, f"{name}: each vs all diverge"
        assert reference.strip(), f"{name}: produced no output"


@pytest.mark.parametrize("name", ["eqntott", "li", "hydro2d"])
def test_om_full_improves_cycles(name, lib, crt):
    objs = [crt] + build_program(name, "each", scale=SCALE)
    base = run(link(objs, [lib]))
    full = om_link(objs, [lib], level=OMLevel.FULL)
    improved = run(full.executable)
    assert improved.output == base.output
    assert improved.cycles < base.cycles
    assert improved.instructions < base.instructions


def test_stdlib_archive_contents():
    lib = build_stdlib()
    defined = set()
    for member in lib.members:
        defined.update(s.name for s in member.defined_globals())
    expected = {
        "__divq", "__remq", "print_int", "iabs", "isqrt", "rand", "srand",
        "fx_mul", "fx_div", "fx_sin", "qsort64", "cmp_asc", "bsearch64",
        "popcount64", "hash_array", "heap_alloc", "cons", "vdot", "mat_mul",
    }
    assert expected <= defined
