"""Compile-time list scheduler tests."""

from hypothesis import given, strategies as st

from repro.isa.instruction import Instruction
from repro.isa.registers import Reg
from repro.minicc.mcode import MInstr, MLabel
from repro.minicc.sched import schedule_items


def instr_names(items):
    return [item.instr.op.name for item in items if isinstance(item, MInstr)]


def mk(instr, **kw):
    return MInstr(instr, **kw)


def test_dependent_pair_stays_ordered():
    items = [
        mk(Instruction.mem("ldq", Reg.T0, Reg.GP, 8)),
        mk(Instruction.opr("addq", Reg.T0, Reg.T1, Reg.T2)),
    ]
    out = schedule_items(items)
    names = instr_names(out)
    assert names.index("ldq") < names.index("addq")


def test_independent_work_fills_load_latency():
    # load; use-of-load; independent op -> independent op should move
    # between the load and its use.
    items = [
        mk(Instruction.mem("ldq", Reg.T0, Reg.SP, 0)),
        mk(Instruction.opr("addq", Reg.T0, Reg.T0, Reg.T1)),
        mk(Instruction.opr("addq", Reg.T2, Reg.T3, Reg.T4)),
    ]
    out = [item.instr for item in schedule_items(items)]
    assert out[1].rc == Reg.T4  # the independent add moved up


def test_stores_not_reordered_with_stores():
    first = Instruction.mem("stq", Reg.T0, Reg.SP, 0)
    second = Instruction.mem("stq", Reg.T1, Reg.SP, 0)
    out = schedule_items([mk(first), mk(second)])
    assert [i.instr for i in out if isinstance(i, MInstr)] == [first, second]


def test_load_not_hoisted_above_store():
    store = Instruction.mem("stq", Reg.T0, Reg.SP, 8)
    load = Instruction.mem("ldq", Reg.T1, Reg.SP, 8)
    out = schedule_items([mk(store), mk(load)])
    names = instr_names(out)
    assert names == ["stq", "ldq"]


def test_branch_stays_last_in_block():
    items = [
        mk(Instruction.opr("addq", Reg.T0, Reg.T1, Reg.T2)),
        mk(Instruction.branch("bne", Reg.T2, 0), branch=("L", 0)),
        mk(Instruction.opr("addq", Reg.T3, Reg.T4, Reg.T5)),
    ]
    out = schedule_items(items)
    names = instr_names(out)
    # The branch ended its block; the trailing add is in the next block.
    assert names.index("bne") == 1


def test_target_labels_are_barriers():
    items = [
        mk(Instruction.opr("addq", Reg.T0, Reg.T1, Reg.T2)),
        MLabel("L", is_target=True),
        mk(Instruction.opr("subq", Reg.T3, Reg.T4, Reg.T5)),
    ]
    out = schedule_items(items)
    assert isinstance(out[1], MLabel)


def test_war_dependence_respected():
    # read t1 then write t1: order must hold.
    items = [
        mk(Instruction.opr("addq", Reg.T1, Reg.T2, Reg.T3)),  # reads t1
        mk(Instruction.mem("lda", Reg.T1, Reg.ZERO, 5)),  # writes t1
    ]
    out = [i.instr for i in schedule_items(items) if isinstance(i, MInstr)]
    assert out[0].op.name == "addq"


def test_gp_pair_separable_by_independent_code():
    """The effect the paper highlights: the ldah/lda GP pair can have
    independent instructions scheduled between its halves."""
    ldah = mk(Instruction.mem("ldah", Reg.GP, Reg.PV, 0), gpdisp_base="f")
    lda = mk(Instruction.mem("lda", Reg.GP, Reg.GP, 0), gpdisp_pair=ldah.uid)
    frame = mk(Instruction.mem("lda", Reg.SP, Reg.SP, -32))
    save = mk(Instruction.mem("stq", Reg.RA, Reg.SP, 0))
    move = mk(Instruction.opr("bis", Reg.A0, Reg.A0, Reg.S0))
    out = schedule_items([MLabel("f", is_target=False), ldah, lda, frame, save, move])
    names = instr_names(out)
    ldah_pos = next(i for i, item in enumerate(out) if item is ldah)
    lda_pos = next(i for i, item in enumerate(out) if item is lda)
    assert ldah_pos < lda_pos  # dependence kept
    assert names[0:2] != ["ldah", "lda"] or len(names) == 2  # usually separated


@st.composite
def random_blocks(draw):
    regs = [Reg.T0, Reg.T1, Reg.T2, Reg.T3]
    n = draw(st.integers(1, 8))
    items = []
    for __ in range(n):
        kind = draw(st.integers(0, 2))
        a, b, c = (draw(st.sampled_from(regs)) for _ in range(3))
        if kind == 0:
            items.append(mk(Instruction.opr("addq", a, b, c)))
        elif kind == 1:
            items.append(mk(Instruction.mem("ldq", a, Reg.SP, 8 * draw(st.integers(0, 3)))))
        else:
            items.append(mk(Instruction.mem("stq", a, Reg.SP, 8 * draw(st.integers(0, 3)))))
    return items


@given(random_blocks())
def test_scheduling_is_a_permutation(items):
    out = schedule_items(list(items))
    assert sorted(id(i) for i in out) == sorted(id(i) for i in items)


@given(random_blocks())
def test_scheduling_preserves_dataflow_order(items):
    """RAW/WAR/WAW pairs keep their relative order."""
    out = schedule_items(list(items))
    pos = {id(item): i for i, item in enumerate(out)}
    for i, early in enumerate(items):
        for late in items[i + 1 :]:
            e_defs, e_uses = set(early.instr.defs()), set(early.instr.uses())
            l_defs, l_uses = set(late.instr.defs()), set(late.instr.uses())
            dependent = (
                (e_defs & l_uses) or (e_defs & l_defs) or (e_uses & l_defs)
            )
            both_mem = early.instr.op.is_store and (
                late.instr.op.is_store or late.instr.op.is_load
            )
            mem_war = early.instr.op.is_load and late.instr.op.is_store
            if dependent or both_mem or mem_war:
                assert pos[id(early)] < pos[id(late)]
