"""Compiler diagnostics: every class of source error reports cleanly."""

import pytest

from repro.minicc import compile_module
from repro.minicc.errors import CompileError


def expect_error(source, match):
    with pytest.raises(CompileError, match=match):
        compile_module(source, "t.o")


def test_undeclared_name():
    expect_error("int f() { return mystery; }", "undeclared")


def test_undeclared_function():
    expect_error("int f() { return nowhere(1); }", "undeclared")


def test_wrong_arity():
    expect_error(
        "int g(int a, int b) { return a + b; } int f() { return g(1); }",
        "takes 2 arguments",
    )


def test_assign_to_array():
    expect_error("int a[4]; int f() { a = 0; return 0; }", "array")
    expect_error("int f() { int a[4]; a = 0; return 0; }", "array")


def test_break_outside_loop():
    expect_error("int f() { break; return 0; }", "break outside")


def test_continue_outside_loop():
    expect_error("int f() { continue; return 0; }", "continue outside")


def test_continue_inside_switch_needs_loop():
    # A switch provides a break target but not a continue target.
    expect_error(
        """
        int f(int x) {
            switch (x) { case 1: continue; }
            return 0;
        }
        """,
        "continue outside",
    )


def test_duplicate_local():
    expect_error("int f() { int x; int x; return 0; }", "duplicate local")


def test_address_of_expression_rejected():
    expect_error("int f(int x) { return &(x + 1); }", "address")


def test_bad_builtin_arity():
    expect_error("int f() { __putint(); return 0; }", "builtin")
    expect_error("int f() { __putint(1, 2); return 0; }", "builtin")
    expect_error("int f() { __halt(3); return 0; }", "builtin")


def test_break_inside_switch_is_fine():
    obj = compile_module(
        "int f(int x) { switch (x) { case 1: x = 2; break; } return x; }",
        "t.o",
    )
    assert obj.find_symbol("f") is not None


def test_error_carries_location():
    with pytest.raises(CompileError) as info:
        compile_module("int f() {\n  return oops;\n}", "t.o")
    assert info.value.line == 2
