"""OM statistics and counter tests."""

from repro.minicc import compile_module
from repro.om import OMLevel, OMOptions, om_link
from repro.om.stats import CodeCounts, OMStats, count_code
from repro.om.symbolic import translate_module


def make_stats(**kwargs) -> OMStats:
    defaults = dict(
        level="full",
        before=CodeCounts(instructions=100, addr_loads=20, pv_loads=8,
                          gp_resets=8, calls=10),
        after=CodeCounts(instructions=85, addr_loads=2, pv_loads=1,
                         gp_resets=0, calls=10),
        loads_converted=6,
        loads_nullified=12,
        gat_bytes_before=160,
        gat_bytes_after=16,
    )
    defaults.update(kwargs)
    return OMStats(**defaults)


def test_derived_fractions():
    stats = make_stats()
    assert stats.frac_loads_converted == 0.3
    assert stats.frac_loads_nullified == 0.6
    assert abs(stats.frac_loads_removed - 0.9) < 1e-9
    assert stats.frac_calls_with_pv_load == 0.1
    assert stats.frac_calls_with_gp_reset == 0.0
    assert stats.frac_instructions_nullified == 0.15
    assert stats.gat_shrink_ratio == 0.1


def test_nullified_counts_include_nops():
    stats = make_stats(
        before=CodeCounts(instructions=100),
        after=CodeCounts(instructions=100, nops=6),
    )
    assert stats.frac_instructions_nullified == 0.06


def test_count_code_on_compiled_module():
    obj = compile_module(
        """
        int g;
        extern int h(int x);
        int f(int x) { g = h(x); return g + 1; }
        """,
        "t.o",
    )
    counts = count_code([translate_module(obj)])
    assert counts.calls == 1
    assert counts.pv_loads == 1
    assert counts.gp_resets == 1
    # literals: h (PV) + g twice deduped at GAT level but both loads count.
    assert counts.addr_loads >= 2
    from repro.objfile.sections import SectionKind

    assert counts.instructions * 4 == obj.section(SectionKind.TEXT).size


def test_count_code_counts_indirect_calls_as_pv():
    obj = compile_module(
        """
        int f(int x) { return x; }
        int call_it(int v) { int *p = &f; return p(v); }
        """,
        "t.o",
    )
    counts = count_code([translate_module(obj)])
    assert counts.indirect_calls == 1
    assert counts.pv_loads >= 1


def test_counters_accumulate_across_rounds(libmc, crt0):
    objs = [
        crt0,
        compile_module(
            """
            int a; int b; int c;
            extern int imax(int x, int y);
            int main() {
                a = imax(1, 2); b = imax(a, 3); c = a + b;
                __putint(c);
                return 0;
            }
            """,
            "m.o",
        ),
    ]
    result = om_link(objs, [libmc], level=OMLevel.FULL)
    counters = result.counters
    assert counters.jsr_to_bsr >= 2
    assert counters.instructions_deleted > 0
    assert counters.instructions_nulled == 0  # full deletes, never nops
    simple = om_link(objs, [libmc], level=OMLevel.SIMPLE)
    assert simple.counters.instructions_deleted == 0
    assert simple.counters.instructions_nulled > 0


def test_stats_levels_recorded(libmc, crt0):
    objs = [crt0, compile_module("int main() { __putint(1); return 0; }", "m.o")]
    for level in (OMLevel.NONE, OMLevel.SIMPLE, OMLevel.FULL):
        result = om_link(objs, [libmc], level=level)
        assert result.stats.level == level.value
