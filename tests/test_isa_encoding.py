"""Encoding/decoding round-trip and format tests for the ISA."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import OPS, Format, Instruction, decode, encode, EncodingError
from repro.isa.encoding import decode_stream, encode_stream
from repro.isa.registers import Reg


def test_memory_format_fields():
    instr = Instruction.mem("ldq", Reg.T0, Reg.GP, 188)
    word = encode(instr)
    assert word >> 26 == 0x29
    assert (word >> 21) & 31 == Reg.T0
    assert (word >> 16) & 31 == Reg.GP
    assert word & 0xFFFF == 188


def test_memory_negative_displacement():
    instr = Instruction.mem("lda", Reg.SP, Reg.SP, -32)
    assert decode(encode(instr)) == instr


def test_branch_format_word_displacement():
    instr = Instruction.branch("bsr", Reg.RA, -5)
    word = encode(instr)
    assert word >> 26 == 0x34
    assert decode(word).disp == -5


def test_operate_register_form():
    instr = Instruction.opr("addq", Reg.T0, Reg.T1, Reg.T2)
    back = decode(encode(instr))
    assert back.op.name == "addq"
    assert (back.ra, back.rb, back.rc) == (Reg.T0, Reg.T1, Reg.T2)
    assert back.lit is None


def test_operate_literal_form():
    instr = Instruction.opr("subq", Reg.SP, 16, Reg.SP, lit=True)
    back = decode(encode(instr))
    assert back.lit == 16
    assert back.rc == Reg.SP


def test_jump_funcs_distinguished():
    jsr = Instruction.jump("jsr", Reg.RA, Reg.PV)
    ret = Instruction.jump("ret", Reg.ZERO, Reg.RA)
    assert decode(encode(jsr)).op.name == "jsr"
    assert decode(encode(ret)).op.name == "ret"


def test_pal_roundtrip():
    instr = Instruction.pal(0x82)
    assert decode(encode(instr)) == instr


def test_nop_is_canonical_bis():
    nop = Instruction.nop()
    assert nop.is_nop
    assert nop.op.name == "bis"
    word = encode(nop)
    assert decode(word).is_nop


def test_displacement_out_of_range_rejected():
    with pytest.raises(EncodingError):
        encode(Instruction.mem("ldq", Reg.T0, Reg.GP, 40000))
    with pytest.raises(EncodingError):
        encode(Instruction.branch("br", Reg.ZERO, 1 << 21))


def test_unknown_word_rejected():
    with pytest.raises(EncodingError):
        decode(0x07 << 26)  # unassigned major opcode


def test_stream_roundtrip():
    instrs = [
        Instruction.mem("ldah", Reg.GP, Reg.PV, 8192),
        Instruction.mem("lda", Reg.GP, Reg.GP, 28576),
        Instruction.jump("jsr", Reg.RA, Reg.PV),
    ]
    assert decode_stream(encode_stream(instrs)) == instrs


def test_stream_requires_word_alignment():
    with pytest.raises(EncodingError):
        decode_stream(b"\x00\x01\x02")


# -- property-based round-trip over the whole catalogue ---------------------

_REG = st.integers(0, 31)


@st.composite
def instructions(draw):
    op = draw(st.sampled_from(sorted(OPS.values(), key=lambda o: o.name)))
    if op.format is Format.MEMORY:
        return Instruction(
            op, ra=draw(_REG), rb=draw(_REG), disp=draw(st.integers(-32768, 32767))
        )
    if op.format is Format.MEMORY_JUMP:
        return Instruction(
            op, ra=draw(_REG), rb=draw(_REG), disp=draw(st.integers(0, (1 << 14) - 1))
        )
    if op.format is Format.BRANCH:
        return Instruction(
            op, ra=draw(_REG), disp=draw(st.integers(-(1 << 20), (1 << 20) - 1))
        )
    if op.format is Format.PAL:
        return Instruction(op, disp=draw(st.integers(0, (1 << 26) - 1)))
    if draw(st.booleans()):
        return Instruction(op, ra=draw(_REG), rc=draw(_REG), lit=draw(st.integers(0, 255)))
    return Instruction(op, ra=draw(_REG), rb=draw(_REG), rc=draw(_REG))


@given(instructions())
def test_roundtrip_property(instr):
    assert decode(encode(instr)) == instr


@given(instructions())
def test_encoding_is_32bit(instr):
    assert 0 <= encode(instr) <= 0xFFFFFFFF


@given(instructions())
def test_defs_uses_exclude_zero(instr):
    assert Reg.ZERO not in instr.defs()
    assert Reg.ZERO not in instr.uses()
