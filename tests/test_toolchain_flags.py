"""Additional toolchain CLI flag coverage."""

import pickle

import pytest

from repro.benchsuite import build_stdlib
from repro.objfile.fileio import save_archive
from repro.toolchain import main

SRC = """
int total;
int main() {
    int i;
    for (i = 0; i < 5; i++) { total += i * i; }
    __putint(total);
    return 0;
}
"""


@pytest.fixture()
def ws(tmp_path):
    (tmp_path / "p.mc").write_text(SRC)
    save_archive(build_stdlib(), tmp_path / "libmc.a")
    return tmp_path


def build(ws, *om_flags):
    main(["cc", str(ws / "p.mc")])
    tool = "om" if om_flags is not None else "ld"
    main(
        [
            "om",
            str(ws / "p.o"),
            "-o",
            str(ws / "p.exe"),
            "-l",
            str(ws / "libmc.a"),
            *om_flags,
        ]
    )
    return ws / "p.exe"


def test_om_simple_flag(ws, capsys):
    build(ws, "-simple")
    out = capsys.readouterr().out
    assert "OM-simple" in out
    main(["run", str(ws / "p.exe")])
    assert capsys.readouterr().out == "30\n"


def test_run_stats_and_fast(ws, capsys):
    build(ws)
    capsys.readouterr()
    main(["run", str(ws / "p.exe"), "--stats"])
    captured = capsys.readouterr()
    assert captured.out == "30\n"
    main(["run", str(ws / "p.exe"), "--fast"])
    assert capsys.readouterr().out == "30\n"


def test_cc_o0_produces_larger_code(ws, capsys):
    from repro.objfile.fileio import load_object_file
    from repro.objfile.sections import SectionKind

    main(["cc", str(ws / "p.mc")])
    optimized = load_object_file(ws / "p.o").section(SectionKind.TEXT).size
    main(["cc", "-O0", str(ws / "p.mc")])
    unoptimized = load_object_file(ws / "p.o").section(SectionKind.TEXT).size
    assert unoptimized >= optimized


def test_convert_escaped_flag(ws, capsys):
    build(ws, "--convert-escaped")
    capsys.readouterr()
    main(["run", str(ws / "p.exe")])
    assert capsys.readouterr().out == "30\n"


def test_executables_are_pickled_images(ws, capsys):
    path = build(ws)
    exe = pickle.loads(path.read_bytes())
    assert exe.entry and exe.segments
