"""Machine simulator tests: functional semantics and the timing model."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.timing import CACHE_MISS_PENALTY
from repro.linker import link, make_crt0
from repro.machine import Machine, MachineError, run
from repro.machine.cpu import _operate, _OPERATE_CODE, _branch_taken
from repro.minicc import compile_module
from repro.objfile.archive import Archive

_MASK = (1 << 64) - 1


def s64(x):
    x &= _MASK
    return x - (1 << 64) if x >> 63 else x


# -- operate-function unit tests --------------------------------------------------


@given(st.integers(0, _MASK), st.integers(0, _MASK))
def test_addq_subq_are_inverse(a, b):
    added = _operate(_OPERATE_CODE["addq"], a, b, 0)
    assert _operate(_OPERATE_CODE["subq"], added, b, 0) == a


@given(st.integers(0, _MASK), st.integers(0, _MASK))
def test_mulq_wraps_to_64_bits(a, b):
    assert _operate(_OPERATE_CODE["mulq"], a, b, 0) == (a * b) & _MASK


@given(st.integers(0, _MASK), st.integers(0, _MASK))
def test_cmplt_is_signed(a, b):
    expected = 1 if s64(a) < s64(b) else 0
    assert _operate(_OPERATE_CODE["cmplt"], a, b, 0) == expected


@given(st.integers(0, _MASK), st.integers(0, _MASK))
def test_cmpult_is_unsigned(a, b):
    assert _operate(_OPERATE_CODE["cmpult"], a, b, 0) == (1 if a < b else 0)


@given(st.integers(0, _MASK), st.integers(0, 63))
def test_sra_sign_extends(a, k):
    assert _operate(_OPERATE_CODE["sra"], a, k, 0) == (s64(a) >> k) & _MASK


@given(st.integers(0, _MASK), st.integers(0, 63))
def test_srl_zero_extends(a, k):
    assert _operate(_OPERATE_CODE["srl"], a, k, 0) == a >> k


@given(st.integers(0, _MASK))
def test_umulh_matches_python(a):
    assert _operate(_OPERATE_CODE["umulh"], a, a, 0) == (a * a) >> 64 & _MASK


@given(st.integers(0, _MASK), st.integers(0, _MASK), st.integers(0, _MASK))
def test_cmov_selects(a, b, old):
    taken = _operate(_OPERATE_CODE["cmoveq"], 0, b, old)
    not_taken = _operate(_OPERATE_CODE["cmoveq"], 1, b, old)
    assert taken == b and not_taken == old


@given(st.integers(0, _MASK))
def test_branch_conditions_consistent(value):
    signed = s64(value)
    assert _branch_taken(0, value) == (value == 0)  # beq
    assert _branch_taken(1, value) == (value != 0)  # bne
    assert _branch_taken(2, value) == (signed < 0)  # blt
    assert _branch_taken(3, value) == (signed <= 0)  # ble
    assert _branch_taken(4, value) == (signed >= 0)  # bge
    assert _branch_taken(5, value) == (signed > 0)  # bgt
    assert _branch_taken(6, value) == (value & 1 == 0)  # blbc
    assert _branch_taken(7, value) == (value & 1 == 1)  # blbs


# -- whole-machine behaviour --------------------------------------------------------


def build(source, libmc, crt0):
    return link([crt0, compile_module(source, "t.o")], [libmc])


def test_functional_and_timed_agree(libmc, crt0):
    source = """
    int a[32];
    int main() {
        int i;
        int s = 0;
        for (i = 0; i < 32; i++) { a[i] = i * 3; }
        for (i = 0; i < 32; i++) { s += a[i] % 5; }
        __putint(s);
        return 0;
    }
    """
    exe = build(source, libmc, crt0)
    fast = run(exe, timed=False)
    timed = run(exe, timed=True)
    assert fast.output == timed.output
    assert fast.instructions == timed.instructions


def test_cycles_bounded_by_dual_issue(libmc, crt0):
    exe = build("int main() { __putint(6 * 7); return 0; }", libmc, crt0)
    result = run(exe)
    assert result.cycles >= result.instructions / 2
    assert result.cycles >= result.instructions - result.dual_issues


def test_cache_misses_counted(libmc, crt0):
    source = """
    int big[4096];
    int main() {
        int i;
        int s = 0;
        for (i = 0; i < 4096; i = i + 4) { big[i] = i; }
        for (i = 0; i < 4096; i = i + 4) { s += big[i]; }
        __putint(s);
        return 0;
    }
    """
    result = run(build(source, libmc, crt0))
    # 32KB of data through an 8KB cache with 4 words per line touched
    # once per line: both sweeps miss every line.
    assert result.dcache_misses >= 1800
    assert result.icache_misses > 0


def test_getticks_monotone(libmc, crt0):
    source = """
    int main() {
        int t0 = __getticks();
        int i;
        int s = 0;
        for (i = 0; i < 100; i++) { s += i; }
        __putint(__getticks() > t0);
        __putint(s);
        return 0;
    }
    """
    result = run(build(source, libmc, crt0))
    assert result.output.split() == ["1", "4950"]


def test_unmapped_access_faults(libmc, crt0):
    source = """
    int main() {
        int *p = 1024;   /* far below any segment */
        return *p;
    }
    """
    with pytest.raises(MachineError, match="unmapped"):
        run(build(source, libmc, crt0))


def test_instruction_limit_enforced(libmc, crt0):
    exe = build("int main() { while (1) { } return 0; }", libmc, crt0)
    with pytest.raises(MachineError, match="limit"):
        Machine(exe, max_instructions=10_000).run(timed=False)


def test_halt_reported(libmc, crt0):
    exe = build("int main() { return 0; }", libmc, crt0)
    assert run(exe).halted


def test_deterministic_cycles(libmc, crt0):
    exe = build(
        "int main() { int i; int s=0; for(i=0;i<50;i++){s+=i*i;} __putint(s); return 0; }",
        libmc,
        crt0,
    )
    first = run(exe)
    second = run(exe)
    assert first.cycles == second.cycles
    assert first.output == second.output


def test_miss_penalty_visible_in_cycles(libmc, crt0):
    """A strided walk over a large array must cost at least the miss
    penalty per touched line more than the same loop over one line."""
    big = """
    int big[8192];
    int main() {
        int i; int s = 0;
        for (i = 0; i < 8192; i = i + 64) { s += big[i]; }
        __putint(s);
        return 0;
    }
    """
    result = run(build(big, libmc, crt0))
    assert result.cycles > result.instructions + result.dcache_misses * (
        CACHE_MISS_PENALTY - 1
    )


def test_budget_exceeded_is_typed_and_carries_limit(libmc, crt0):
    from repro.machine import ExecutionBudgetExceeded

    exe = build("int main() { while (1) { } return 0; }", libmc, crt0)
    for timed in (False, True):
        with pytest.raises(ExecutionBudgetExceeded) as err:
            run(exe, timed=timed, max_instructions=5_000)
        assert err.value.limit == 5_000
    # Subclasses MachineError: existing `except MachineError` callers
    # keep catching budget overruns.
    assert issubclass(ExecutionBudgetExceeded, MachineError)


def test_budget_not_triggered_by_a_halting_program(libmc, crt0):
    exe = build("int main() { __putint(9); return 0; }", libmc, crt0)
    result = run(exe, timed=False, max_instructions=10_000_000)
    assert result.output == "9\n"
    assert result.halted
