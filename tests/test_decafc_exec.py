"""End-to-end Decaf semantics: dispatch, inheritance, vtables under OM.

Every program runs on both machine backends (interpreter and JIT) and
the outputs are pinned to exact values, so a regression anywhere in
decafc, the linker, OM, or either backend shows up as a wrong number —
and a backend disagreement shows up as the two lists differing.
"""

import pytest

from repro.decafc import compile_module
from repro.linker import link
from repro.machine import run
from repro.om import OMLevel, OMOptions, om_link


@pytest.fixture()
def dcf(libmc, crt0):
    """Compile+link+run helper returning interp and JIT outputs."""

    def execute(source: str, *, om: bool = False, extra_sources=()):
        objects = [crt0, compile_module(source, "test.o")]
        for index, text in enumerate(extra_sources):
            objects.append(compile_module(text, f"extra{index}.o"))
        if om:
            options = OMOptions(schedule=True, remove_dead_procs=True)
            exe = om_link(
                objects, [libmc], level=OMLevel.FULL, options=options
            ).executable
        else:
            exe = link(objects, [libmc])
        results = [
            [int(line) for line in run(exe, backend=backend).output.split()]
            for backend in ("interp", "jit")
        ]
        assert results[0] == results[1], "interp and JIT outputs diverged"
        return results[0]

    return execute


def run_ints(dcf, body: str, prelude: str = "", **kwargs) -> list[int]:
    return dcf(prelude + "\nint main() {" + body + "\nreturn 0; }", **kwargs)


SHAPES = """
class Shape {
    int scale;
    int area(int w, int h) { return 0; }
    int describe() { return 1 + this.area(3, 4); }
}
class Rect extends Shape {
    int pad;
    int area(int w, int h) { return (w * h + pad) * scale; }
}
class Square extends Rect {
    int area(int w, int h) { return w * w * scale; }
    int tag() { return 77; }
}
"""


def test_override_resolution_through_base_reference(dcf):
    values = run_ints(
        dcf,
        """
        Shape s = new Shape();
        Shape r = new Rect();
        Shape q = new Square();
        s.scale = 1; r.scale = 2; q.scale = 3;
        print(s.area(3, 4));
        print(r.area(3, 4));
        print(q.area(3, 4));
        """,
        prelude=SHAPES,
    )
    # Same call site, three vtables: base, override, deeper override.
    assert values == [0, 24, 27]


def test_inherited_method_dispatches_on_dynamic_type(dcf):
    values = run_ints(
        dcf,
        """
        Shape s = new Shape();
        Shape r = new Rect();
        r.scale = 10;
        print(s.describe());
        print(r.describe());
        """,
        prelude=SHAPES,
    )
    # describe() is inherited code, but this.area(3,4) inside it still
    # dispatches through the receiver's vtable.
    assert values == [1, 121]


def test_inherited_fields_share_layout(dcf):
    values = run_ints(
        dcf,
        """
        Rect r = new Rect();
        Square q = new Square();
        r.scale = 5; r.pad = 2;
        q.scale = 7; q.pad = 9;
        print(r.scale); print(r.pad);
        print(q.scale); print(q.pad);
        print(q.tag());
        """,
        prelude=SHAPES,
    )
    assert values == [5, 2, 7, 9, 77]


def test_fields_zero_initialized_and_new_array(dcf):
    values = run_ints(
        dcf,
        """
        Rect r = new Rect();
        int a = new int[4];
        int i = 0;
        print(r.scale); print(r.pad);
        for (i = 0; i < 4; i = i + 1) { print(a[i]); a[i] = i * i; }
        for (i = 0; i < 4; i = i + 1) { print(a[i]); }
        """,
        prelude=SHAPES,
    )
    assert values == [0, 0, 0, 0, 0, 0, 0, 1, 4, 9]


def test_vtables_survive_om_full_with_gc(dcf):
    # remove_dead_procs must treat vtable entries as roots: every
    # method here is reached only through dispatch.
    values = run_ints(
        dcf,
        """
        Shape p = new Rect();
        p.scale = 2;
        print(p.area(5, 5));
        print(p.describe());
        """,
        prelude=SHAPES,
        om=True,
    )
    assert values == [50, 25]


def test_cross_module_hierarchy(dcf):
    # The subclass lives in another translation unit and sees the base
    # only through an extern shape import.
    base = """
    class Counter {
        int n;
        int bump(int by) { n = n + by; return n; }
    }
    """
    derived = """
    extern class Counter {
        int n;
        int bump(int by);
    }
    class Double extends Counter {
        int bump(int by) { n = n + by * 2; return n; }
    }
    int make_double() { return new Double(); }
    """
    values = run_ints(
        dcf,
        """
        Counter c = new Counter();
        Counter d = make_double();
        print(c.bump(3)); print(c.bump(3));
        print(d.bump(3)); print(d.bump(3));
        """,
        prelude=base + "\nextern int make_double();\n",
        extra_sources=[derived],
    )
    assert values == [3, 6, 6, 12]


def test_recursion_and_arithmetic_semantics(dcf):
    values = run_ints(
        dcf,
        """
        print(fact(6));
        print(-100 / 7);
        print(-100 % 7);
        print(3 < 4); print(4 < 3);
        """,
        prelude="int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }",
    )
    # Division semantics must match MiniC's exactly (same IR ops).
    assert values == [720, -14, -2, 1, 0]


def test_null_compares_equal_to_zero(dcf):
    values = run_ints(
        dcf,
        """
        Shape s = null;
        print(s == null);
        s = new Shape();
        print(s == null);
        print(s != null);
        """,
        prelude=SHAPES,
    )
    assert values == [1, 0, 1]
