"""Span-dependent relaxation: range predicate edges and the fixpoint.

The multi-wave tests build the symbolic program by hand so the modelled
displacements land exactly on the range boundary: a demotion in one
wave revives a PV load, which shifts a *different* site past the edge
in the next wave — the cascade the one-shot check cannot express.
"""

from repro.isa.instruction import Instruction
from repro.layout.callgraph import CallSite
from repro.layout.relax import (
    BSR_RANGE_WORDS,
    RelaxCandidate,
    bsr_disp_in_range,
    relax_call_sites,
)
from repro.minicc.mcode import MInstr
from repro.om.symbolic import SymbolicModule, SymbolicProc

#: A small range keeps the hand-built programs tiny; the arithmetic is
#: identical to the real 21-bit field.
R = 64


def test_disp_range_positive_edge():
    assert bsr_disp_in_range(BSR_RANGE_WORDS - 1)
    assert not bsr_disp_in_range(BSR_RANGE_WORDS)


def test_disp_range_negative_edge():
    assert bsr_disp_in_range(-BSR_RANGE_WORDS)
    assert not bsr_disp_in_range(-BSR_RANGE_WORDS - 1)


def test_disp_range_custom_width_both_signs():
    assert bsr_disp_in_range(R - 1, R)
    assert not bsr_disp_in_range(R, R)
    assert bsr_disp_in_range(-R, R)
    assert not bsr_disp_in_range(-R - 1, R)


def _instr():
    return MInstr(Instruction.nop())


def _proc(name, items):
    return SymbolicProc(name, items=list(items), exported=True)


def _forward_program(filler_words):
    """P[loadX,jsrX] Q[loadY,jsrY] F[filler] X[2] Y[2], one module.

    With both PV loads optimistically deleted (text base 0): jsrX at 0,
    jsrY at 4, X at ``8 + 4*filler``, Y eight bytes later, so the
    modelled word displacements are ``filler + 1`` (X) and
    ``filler + 2`` (Y).
    """
    load_x, jsr_x = _instr(), _instr()
    load_y, jsr_y = _instr(), _instr()
    p = _proc("P", [load_x, jsr_x])
    q = _proc("Q", [load_y, jsr_y])
    filler = _proc("F", [_instr() for __ in range(filler_words)])
    x = _proc("X", [_instr(), _instr()])
    y = _proc("Y", [_instr(), _instr()])
    module = SymbolicModule("m", procs=[p, q, filler, x, y])
    candidates = [
        RelaxCandidate(CallSite(0, p, jsr_x, load_x, 0, x), True, 0),
        RelaxCandidate(CallSite(0, q, jsr_y, load_y, 0, y), True, 0),
    ]
    return [module], candidates, jsr_x, jsr_y


def test_fixpoint_needs_two_waves():
    """One demotion pushes the *other* site out of range.

    filler = R - 2: optimistically X's displacement is R - 1 (legal)
    and Y's is R (illegal).  Demoting Y revives its PV load between
    jsrX and X, pushing X's displacement to R — a second wave must
    demote it too.  A one-wave (or one-shot) scheme would wrongly keep
    the X conversion.
    """
    modules, candidates, jsr_x, jsr_y = _forward_program(R - 2)
    result = relax_call_sites(modules, candidates, text_base=0, range_words=R)
    assert result.decisions[jsr_x.uid] is False
    assert result.decisions[jsr_y.uid] is False
    assert result.waves == 2
    assert result.iterations == 3  # two demoting waves + the clean pass
    assert result.demoted == 2
    assert result.converged


def test_fixpoint_keeps_in_range_sites():
    """filler = R - 3: X at R - 2, Y at R - 1 — both legal, one pass."""
    modules, candidates, jsr_x, jsr_y = _forward_program(R - 3)
    result = relax_call_sites(modules, candidates, text_base=0, range_words=R)
    assert result.decisions[jsr_x.uid] is True
    assert result.decisions[jsr_y.uid] is True
    assert result.waves == 0
    assert result.iterations == 1
    assert result.converged


def _backward_program(filler_words):
    """X[2] F[filler] P[loadP,jsrP->X]: displacement -(filler + 3)."""
    load_p, jsr_p = _instr(), _instr()
    x = _proc("X", [_instr(), _instr()])
    filler = _proc("F", [_instr() for __ in range(filler_words)])
    p = _proc("P", [load_p, jsr_p])
    module = SymbolicModule("m", procs=[x, filler, p])
    candidates = [RelaxCandidate(CallSite(0, p, jsr_p, load_p, 0, x), True, 0)]
    return [module], candidates, jsr_p


def test_negative_edge_exact():
    modules, candidates, jsr_p = _backward_program(R - 3)
    result = relax_call_sites(modules, candidates, text_base=0, range_words=R)
    assert result.decisions[jsr_p.uid] is True  # exactly -R: legal

    modules, candidates, jsr_p = _backward_program(R - 2)
    result = relax_call_sites(modules, candidates, text_base=0, range_words=R)
    assert result.decisions[jsr_p.uid] is False  # -(R + 1): demoted


def test_iteration_bound_demotes_conservatively():
    """Hitting the ceiling demotes every remaining optimist (safe)."""
    modules, candidates, jsr_x, jsr_y = _forward_program(R - 2)
    result = relax_call_sites(
        modules, candidates, text_base=0, range_words=R, max_iterations=1
    )
    assert not result.converged
    assert result.decisions[jsr_x.uid] is False
    assert result.decisions[jsr_y.uid] is False
    assert result.demoted == 2


def test_slack_tightens_the_window():
    """Slack bytes shrink the acceptance window.

    The same program that is fully legal at slack 0 (see
    ``test_fixpoint_keeps_in_range_sites``) loses Y at ``hi = R - 2``,
    and the revived load then cascades into X — both demote.
    """
    modules, candidates, jsr_x, jsr_y = _forward_program(R - 3)
    result = relax_call_sites(
        modules, candidates, text_base=0, range_words=R, slack=4
    )
    assert result.decisions[jsr_y.uid] is False
    assert result.decisions[jsr_x.uid] is False
    assert result.waves == 2
