"""The toolchain daemon: coalescing, backpressure, drain, end-to-end.

The concurrency-semantics tests (coalescing, backpressure, drain)
substitute a deterministic stub job runner on a thread pool — the
server's single-flight, admission, and drain logic is identical, but
"a build" becomes "a sleep we control".  The end-to-end tests run the
real worker pool over real generated programs.
"""

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cache import ArtifactCache
from repro.fuzz.generate import GenConfig, generate_program
from repro.obs.trace import TraceLog
from repro.serve.client import (
    ConnectionFailed,
    RequestFailed,
    ServeClient,
    ServerBusy,
)
from repro.serve.server import ServeConfig, ServerThread

#: A tiny grammar config so generated programs compile in milliseconds.
_GEN = GenConfig(modules=2, helpers=1, switches=False, pointers=False)


def stub_runner(op, payload, meta=None):
    """Deterministic job body: the first source text scripts it.

    ``sleep:<s>`` sleeps then succeeds; ``fail:<kind>`` fails with that
    kind; anything else succeeds immediately.
    """
    script = payload["sources"][0][1]
    if script.startswith("sleep:"):
        time.sleep(float(script.split(":", 1)[1]))
    elif script.startswith("fail:"):
        return {"ok": False, "error": {"kind": script.split(":", 1)[1],
                                       "message": "scripted failure"}}
    return {"ok": True, "result": {"op": op, "script": script}}


def _stub_server(tmp_path=None, **config):
    cache = ArtifactCache(tmp_path, stamp="test") if tmp_path else None
    return ServerThread(
        cache,
        ServeConfig(**config),
        executor=ThreadPoolExecutor(max_workers=config.get("workers", 2)),
        job_runner=stub_runner,
    )


def _sources(script, name="m.mc"):
    return [[name, script]]


# -- coalescing ----------------------------------------------------------------

def test_identical_concurrent_requests_coalesce():
    with _stub_server(workers=4, queue_limit=8) as st:
        n = 4
        barrier = threading.Barrier(n)
        responses = []

        def fire():
            with ServeClient(st.address, timeout=30) as client:
                barrier.wait(timeout=10)
                responses.append(
                    client.run(sources=_sources("sleep:0.8"), variant="ld")
                )

        threads = [threading.Thread(target=fire) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert len(responses) == n
        assert all(r["ok"] for r in responses)
        counters = ServeClient(st.address).status()["counters"]
        # One build served everyone: exactly one computation, the rest
        # joined its flight.
        assert counters["computed"] == 1
        assert counters["coalesced"] == n - 1
        assert counters["completed"] == n
        assert sum(1 for r in responses if r["coalesced"]) == n - 1


def test_coalesced_result_is_shared_not_recomputed(tmp_path):
    with _stub_server(tmp_path, workers=2) as st:
        with ServeClient(st.address, timeout=30) as client:
            first = client.run(sources=_sources("hello"), variant="ld")
            again = client.run(sources=_sources("hello"), variant="ld")
            other = client.run(sources=_sources("other"), variant="ld")
        assert first["result"] == again["result"]
        assert not first["cached"] and again["cached"]
        assert other["result"]["script"] == "other"


# -- backpressure --------------------------------------------------------------

def test_full_queue_answers_retry_after():
    with _stub_server(workers=1, queue_limit=1, retry_after=0.02) as st:
        start = threading.Barrier(2)

        def occupy():
            with ServeClient(st.address, timeout=30) as client:
                start.wait(timeout=10)
                client.run(sources=_sources("sleep:1.0"), variant="ld")

        occupant = threading.Thread(target=occupy)
        occupant.start()
        start.wait(timeout=10)
        time.sleep(0.2)  # let the occupant's job get admitted

        with ServeClient(st.address, timeout=30, retries=0) as client:
            with pytest.raises(ServerBusy):
                client.run(sources=_sources("squeezed-out"), variant="ld")
            assert client.busy_retries == 1
        occupant.join()

        status = ServeClient(st.address).status()
        assert status["counters"]["rejected"] == 1
        assert status["counters"]["completed"] == 1


def test_client_retries_through_backpressure():
    with _stub_server(workers=1, queue_limit=1, retry_after=0.02) as st:
        n = 3
        barrier = threading.Barrier(n)
        outcomes = []

        def fire(i):
            # Generous retry budget: every request eventually lands.
            with ServeClient(st.address, timeout=30, retries=50,
                             backoff=0.02, backoff_cap=0.2) as client:
                barrier.wait(timeout=10)
                response = client.run(
                    sources=_sources("sleep:0.2", name=f"m{i}.mc"),
                    variant="ld",
                )
                outcomes.append((response["ok"], client.busy_retries))

        threads = [threading.Thread(target=fire, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert [ok for ok, _ in outcomes] == [True] * n
        status = ServeClient(st.address).status()
        assert status["counters"]["completed"] == n
        # The server's rejected count is exactly the busy replies the
        # clients absorbed — the counters reconcile across the wire.
        assert status["counters"]["rejected"] == sum(b for _, b in outcomes)


# -- failures and bad requests -------------------------------------------------

def test_job_failure_reaches_all_coalesced_waiters():
    with _stub_server(workers=2) as st:
        with ServeClient(st.address, timeout=30) as client:
            with pytest.raises(RequestFailed) as err:
                client.run(sources=_sources("fail:budget-exceeded"), variant="ld")
            assert err.value.kind == "budget-exceeded"
        counters = ServeClient(st.address).status()["counters"]
        assert counters["failed"] == 1 and counters["completed"] == 0


def test_malformed_requests_are_rejected_cleanly():
    with _stub_server(workers=1) as st:
        with ServeClient(st.address, timeout=30) as client:
            with pytest.raises(RequestFailed, match="unknown op"):
                client.request("frobnicate")
            with pytest.raises(RequestFailed, match="sources"):
                client.request("run")  # neither sources nor program
            with pytest.raises(RequestFailed, match="unknown benchmark"):
                client.run(program="no-such-benchmark")
            # The connection survives every rejection.
            assert client.status()["counters"]["bad_requests"] == 3


# -- graceful drain ------------------------------------------------------------

def test_drain_finishes_in_flight_work_and_flushes_trace(tmp_path):
    sink = tmp_path / "serve-trace.jsonl"
    st = ServerThread(
        None,
        ServeConfig(workers=2, trace_flush_every=10_000),  # only drain flushes
        trace=TraceLog(sink=sink),
        executor=ThreadPoolExecutor(max_workers=2),
        job_runner=stub_runner,
    )
    with st:
        responses = []

        def slow_request():
            with ServeClient(st.address, timeout=30) as client:
                responses.append(
                    client.run(sources=_sources("sleep:0.8"), variant="ld")
                )

        worker = threading.Thread(target=slow_request)
        worker.start()
        time.sleep(0.2)  # request is in flight
        ServeClient(st.address, timeout=30).shutdown()
        worker.join(timeout=30)

        # The in-flight request completed despite the shutdown racing it.
        assert responses and responses[0]["ok"]

    # Stopped: the trace sink holds the start event, the request span,
    # and the drained marker — nothing was dropped.
    lines = [json.loads(line) for line in sink.read_text().splitlines()]
    names = [line["name"] for line in lines]
    assert "serve.start" in names
    assert "serve.run" in names
    assert names[-1] == "serve.drained"

    # And the listener is gone.
    with pytest.raises(ConnectionFailed):
        ServeClient(st.address, timeout=5, retries=1, backoff=0.01).status()


# -- end-to-end over the real worker pool --------------------------------------

@pytest.fixture(scope="module")
def real_server(tmp_path_factory):
    cache = ArtifactCache(tmp_path_factory.mktemp("serve-cache"))
    with ServerThread(cache, ServeConfig(workers=2, queue_limit=8)) as st:
        yield st


def test_generated_programs_compile_and_run_end_to_end(real_server):
    """Seeded RichProgramGen programs through the real serving path."""
    address = real_server.address
    programs = [generate_program(seed, _GEN) for seed in (1, 2, 3)]

    with ServeClient(address, timeout=300) as client:
        for program in programs:
            sources = [list(pair) for pair in program.modules]
            compiled = client.compile(sources=sources, mode="each")
            assert compiled["ok"]
            assert compiled["result"]["objects"] == len(program.modules)

            ran = client.run(sources=sources, mode="each", variant="om-full",
                             timed=False, max_instructions=5_000_000)
            assert ran["ok"]
            assert ran["result"]["halted"]
            # OM removed address loads relative to the standard link.
            assert (ran["result"]["addr_loads_after"]
                    <= ran["result"]["addr_loads_before"])

            # Identical request again: served without recomputing.
            again = client.run(sources=sources, mode="each", variant="om-full",
                               timed=False, max_instructions=5_000_000)
            assert again["ok"] and (again["cached"] or again["coalesced"])
            assert again["result"]["output"] == ran["result"]["output"]


def test_budget_bounded_run_reports_budget_exceeded(real_server):
    looping = [["loop.mc", "int main() { while (1) { } return 0; }"]]
    with ServeClient(real_server.address, timeout=300) as client:
        with pytest.raises(RequestFailed) as err:
            client.run(sources=looping, variant="ld", timed=False,
                       max_instructions=20_000)
        assert err.value.kind == "budget-exceeded"


def test_explain_reconciles_over_the_wire(real_server):
    program = generate_program(5, _GEN)
    with ServeClient(real_server.address, timeout=300) as client:
        explained = client.explain(
            sources=[list(pair) for pair in program.modules],
            mode="each", variant="om-full",
        )
    assert explained["ok"]
    assert explained["result"]["reconciled"]
    assert explained["result"]["events"] >= 1
    assert explained["result"]["actions"]


# -- toolchain stamp (stale-stamp regression) ----------------------------------

def test_server_stamp_matches_its_cache(tmp_path):
    """With a cache attached, the daemon serves under the cache's stamp
    (the keys it answers from must match)."""
    from repro.serve.server import ToolchainServer

    cache = ArtifactCache(tmp_path, stamp="cafe0123deadbeef")
    server = ToolchainServer(cache, ServeConfig())
    assert server.stamp == "cafe0123deadbeef"
    assert server.status()["stamp"] == "cafe0123deadbeef"


def test_server_stamp_computed_fresh_not_memoized(monkeypatch):
    """Without a cache, the stamp is computed at daemon construction —
    not read from the process-lifetime ``toolchain_stamp()`` memo, so a
    toolchain upgraded on disk is stamped correctly at the next start."""
    import repro.serve.server as server_mod
    from repro.serve.server import ToolchainServer

    monkeypatch.setattr(
        server_mod, "compute_toolchain_stamp", lambda: "fresh0000fresh00"
    )
    server = ToolchainServer(None, ServeConfig())
    assert server.stamp == "fresh0000fresh00"
    assert server.status()["stamp"] == "fresh0000fresh00"


def test_status_reports_stamp_over_the_wire():
    with _stub_server() as st:
        with ServeClient(st.address, timeout=30) as client:
            status = client.status()
    stamp = status["stamp"]
    assert isinstance(stamp, str) and len(stamp) == 16


def test_wpo_variant_serves_and_matches_om_full(real_server):
    """The partitioned link variant answers over the wire with output
    identical to om-full (byte-identity seen as behavioral identity)."""
    program = generate_program(7, _GEN)
    sources = [list(pair) for pair in program.modules]
    with ServeClient(real_server.address, timeout=300) as client:
        full = client.run(sources=sources, mode="each", variant="om-full",
                          timed=False, max_instructions=5_000_000)
        wpo = client.run(sources=sources, mode="each", variant="om-full-wpo",
                         timed=False, max_instructions=5_000_000)
    assert full["ok"] and wpo["ok"]
    assert wpo["result"]["output"] == full["result"]["output"]
    assert wpo["result"]["text_bytes"] == full["result"]["text_bytes"]
    assert wpo["result"]["gat_bytes"] == full["result"]["gat_bytes"]
