"""Static structure checks over the whole benchmark suite.

These pin the properties that make the suite a meaningful workload for
the paper's measurements: plenty of address loads, call-heavy code,
library pull-in, and at least some function-pointer calls and jump
tables somewhere in the suite.
"""

import pytest

from repro.benchsuite import PROGRAMS, build_program, build_stdlib
from repro.linker import make_crt0
from repro.linker.resolve import resolve_inputs
from repro.objfile.relocations import LituseKind, RelocType


@pytest.fixture(scope="module")
def suite_inputs():
    lib = build_stdlib()
    crt0 = make_crt0()
    out = {}
    for name in PROGRAMS:
        objs = [crt0] + build_program(name, "each", scale=1)
        out[name] = resolve_inputs(objs, [lib])
    return out


def count_relocs(inputs, rtype):
    return sum(
        1
        for module in inputs.modules
        for reloc in module.relocations
        if reloc.type is rtype
    )


def test_every_program_has_many_address_loads(suite_inputs):
    for name, inputs in suite_inputs.items():
        literals = count_relocs(inputs, RelocType.LITERAL)
        assert literals >= 15, f"{name}: only {literals} address loads"


def test_every_program_pulls_library_members(suite_inputs):
    for name, inputs in suite_inputs.items():
        libs = [m for m in inputs.modules if m.name in (
            "runtime.o", "io.o", "math.o", "rand.o", "fixed.o", "mem.o",
            "sort.o", "search.o", "bits.o", "hash.o", "alloc.o", "list.o",
            "vec.o", "matrix.o", "wstr.o", "ring.o", "stats.o",
        )]
        assert len(libs) >= 2, f"{name}: pulled only {len(libs)} library members"


def test_every_program_has_gp_bookkeeping(suite_inputs):
    for name, inputs in suite_inputs.items():
        gpdisp = count_relocs(inputs, RelocType.GPDISP)
        assert gpdisp >= 10, f"{name}: only {gpdisp} GPDISP pairs"


def test_suite_contains_function_pointer_calls(suite_inputs):
    """At least some programs call through procedure variables — the
    PV-loads even OM-full cannot remove."""
    with_pointers = []
    for name, inputs in suite_inputs.items():
        lituse_jsr = sum(
            1
            for module in inputs.modules
            for reloc in module.relocations
            if reloc.type is RelocType.LITUSE and reloc.extra == int(LituseKind.JSR)
        )
        assert lituse_jsr > 0, f"{name}: no direct calls at all?"
        # A taken procedure address shows up as an *escaped* literal
        # naming a procedure defined somewhere in the program.
        proc_names = {
            sym.name
            for module in inputs.modules
            for sym in module.procedures()
        }
        escaped_proc_literals = sum(
            1
            for module in inputs.modules
            for reloc in module.relocations
            if reloc.type is RelocType.LITERAL
            and reloc.extra == 1
            and reloc.symbol in proc_names
        )
        if escaped_proc_literals:
            with_pointers.append(name)
    assert {"li", "espresso", "eqntott"} <= set(with_pointers)


def test_suite_contains_jump_tables(suite_inputs):
    tabled = [
        name
        for name, inputs in suite_inputs.items()
        if count_relocs(inputs, RelocType.JMPTAB) > 0
    ]
    assert "sc" in tabled  # the spreadsheet's opcode dispatch
    assert len(tabled) >= 2


def test_common_sizes_vary_widely(suite_inputs):
    """Small scalars and large arrays must coexist so the small-data
    sorting has something to sort."""
    for name in ("hydro2d", "swm256"):
        inputs = suite_inputs[name]
        sizes = [size for size, __ in inputs.commons.values()]
        assert min(sizes) <= 64
        assert max(sizes) >= 4096
