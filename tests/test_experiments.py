"""Experiment-harness tests on a small program subset."""

import pytest

from repro.experiments import figures
from repro.experiments.build import run_variant, variant_stats
from repro.experiments.report import format_table

SUBSET = ["eqntott", "li"]
SCALE = 1


def test_fig3_fractions_bounded():
    keys, rows = figures.fig3_rows(programs=SUBSET, scale=SCALE)
    assert rows[-1]["program"] == "mean"
    for row in rows:
        for key in keys:
            assert 0.0 <= row[key] <= 1.0
        # Converted plus nullified can never exceed all address loads.
        for mode in ("each", "all"):
            for level in ("simple", "full"):
                total = row[f"{mode}_{level}_conv"] + row[f"{mode}_{level}_null"]
                assert total <= 1.0


def test_fig3_full_removes_more_than_simple():
    __, rows = figures.fig3_rows(programs=SUBSET, scale=SCALE)
    for row in rows[:-1]:
        simple = row["each_simple_conv"] + row["each_simple_null"]
        full = row["each_full_conv"] + row["each_full_null"]
        assert full >= simple


def test_fig4_ordering_matches_paper():
    """no-OM needs the most bookkeeping; OM-simple keeps most PV-loads
    but removes GP-resets; OM-full removes nearly everything."""
    __, rows = figures.fig4_rows(programs=SUBSET, scale=SCALE)
    for row in rows[:-1]:
        for mode in ("each", "all"):
            assert row[f"{mode}_none_pv"] >= row[f"{mode}_simple_pv"]
            assert row[f"{mode}_simple_pv"] >= row[f"{mode}_full_pv"]
            assert row[f"{mode}_none_reset"] > row[f"{mode}_simple_reset"]
            assert row[f"{mode}_full_reset"] <= row[f"{mode}_simple_reset"]
            # OM-simple leaves most PV loads (scheduling blocked skips).
            assert row[f"{mode}_simple_pv"] >= 0.5


def test_fig5_full_exceeds_simple():
    __, rows = figures.fig5_rows(programs=SUBSET, scale=SCALE)
    for row in rows[:-1]:
        assert 0.0 < row["each_simple"] < 0.35
        assert row["each_full"] >= row["each_simple"]


def test_fig6_improvements_positive_on_subset():
    __, rows = figures.fig6_rows(programs=SUBSET, scale=SCALE, include_sched=False)
    mean = rows[-1]
    assert mean["each_simple"] > 0
    assert mean["each_full"] > mean["each_simple"]
    assert mean["all_full"] > 0


def test_gat_reduction_band():
    __, rows = figures.gat_rows(programs=SUBSET, scale=SCALE)
    for row in rows[:-1]:
        assert row["gat_after"] < row["gat_before"]
        assert row["ratio"] <= 0.5


def test_run_variant_caches_and_matches():
    first = run_variant("eqntott", "each", "ld", SCALE)
    second = run_variant("eqntott", "each", "ld", SCALE)
    assert first is second  # lru_cache
    full = run_variant("eqntott", "each", "om-full", SCALE)
    assert full.output == first.output


def test_variant_stats_reports_levels():
    simple = variant_stats("li", "each", "om-simple", SCALE)
    full = variant_stats("li", "each", "om-full", SCALE)
    assert simple.stats.level == "simple"
    assert full.stats.level == "full"
    assert full.stats.gat_bytes_after <= simple.stats.gat_bytes_after


def test_format_table_renders():
    keys = ["x"]
    rows = [{"program": "p", "x": 0.5}, {"program": "mean", "x": 0.5}]
    text = format_table(keys, rows, percent=True)
    assert "50.0%" in text and "program" in text


def test_cli_smoke(capsys):
    from repro.experiments.__main__ import main

    assert main(["fig5", "--programs", "eqntott", "--scale", "1", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "fig5" in out and "eqntott" in out and "paper:" in out
    assert "pipeline:" in out  # the metrics table precedes the figure


def test_cli_trace_writes_chrome_trace(tmp_path, capsys):
    import json

    from repro.experiments.__main__ import main
    from repro.experiments.build import configure_cache

    path = tmp_path / "pipeline.json"
    try:
        code = main([
            "overhead", "--programs", "eqntott", "--scale", "1",
            "--no-cache", "--trace", str(path),
        ])
    finally:
        configure_cache(None)
    out = capsys.readouterr().out
    assert code == 0
    assert "overhead" in out and "trace written" in out

    doc = json.loads(path.read_text())
    assert "traceEvents" in doc
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    stages = {e["args"]["stage"] for e in spans}
    assert stages == {"build", "link", "profile"}
    for event in doc["traceEvents"]:
        assert {"name", "cat", "ph", "ts", "pid", "tid"} <= set(event)


def test_cli_profile_command(capsys):
    from repro.experiments.__main__ import main

    assert main(["profile", "eqntott", "--scale", "1", "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert "profile eqntott/each/om-full" in out
    assert "cycle_fraction" in out
    assert "overhead:" in out


def test_cli_cache_warm_cycle(tmp_path, capsys):
    """Second CLI invocation against the same cache dir is all hits."""
    from repro.experiments.__main__ import main
    from repro.experiments.build import clear_caches

    argv = [
        "fig5", "--programs", "eqntott", "--scale", "1",
        "--cache-dir", str(tmp_path),
    ]
    try:
        assert main(argv) == 0
        capsys.readouterr()
        clear_caches()  # simulate a fresh process: only the disk cache survives
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "misses=0" in out
    finally:
        from repro.experiments.build import configure_cache

        configure_cache(None)
