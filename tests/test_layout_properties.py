"""Property-based tests of the linker's layout invariants."""

from hypothesis import given, settings, strategies as st

from repro.linker.layout import GP_BIAS, LayoutOptions, compute_layout
from repro.linker.resolve import resolve_inputs
from repro.minicc import Options, compile_module

NOSCHED = Options(schedule=False)


def synth_module(index: int, nglobals: int, array_words: int, static: bool):
    decls = []
    uses = []
    for g in range(nglobals):
        prefix = "static int" if static else "int"
        if array_words > 1:
            decls.append(f"{prefix} g{index}_{g}[{array_words}];")
            uses.append(f"s += g{index}_{g}[0];")
        else:
            decls.append(f"{prefix} g{index}_{g};")
            uses.append(f"s += g{index}_{g};")
    source = "\n".join(decls) + f"""
    int f{index}() {{
        int s = 0;
        {' '.join(uses)}
        return s;
    }}
    """
    return compile_module(source, f"m{index}.o", NOSCHED)


@st.composite
def module_sets(draw):
    count = draw(st.integers(1, 5))
    modules = []
    for index in range(count):
        modules.append(
            synth_module(
                index,
                nglobals=draw(st.integers(1, 4)),
                array_words=draw(st.sampled_from([1, 1, 8, 64])),
                static=draw(st.booleans()),
            )
        )
    return modules


@settings(max_examples=25, deadline=None)
@given(modules=module_sets(), sort_commons=st.booleans(), capacity=st.integers(2, 32))
def test_layout_invariants(modules, sort_commons, capacity):
    inputs = resolve_inputs(modules)
    try:
        layout = compute_layout(
            inputs, LayoutOptions(sort_commons=sort_commons, gat_capacity=capacity)
        )
    except Exception as exc:
        # Only the documented overflow failure is acceptable.
        assert "GAT capacity" in str(exc)
        return

    # 1. Group sizes respect capacity; GPs carry the conventional bias.
    for group in layout.groups:
        assert len(group.slots) <= capacity
        assert group.gp == group.start + GP_BIAS

    # 2. Every module's literals resolve to slots within the 16-bit
    #    window of that module's GP.
    from repro.objfile.relocations import RelocType

    for index, module in enumerate(inputs.modules):
        gp = layout.gp_for_module(index)
        for reloc in module.relocations:
            if reloc.type is RelocType.LITERAL:
                slot = layout.gat_slot_addr(index, reloc.symbol, reloc.addend)
                assert -32768 <= slot - gp <= 32767

    # 3. GAT slots are unique addresses, 8-aligned, densely packed.
    all_slots = [addr for g in layout.groups for addr in g.slots.values()]
    assert len(set(all_slots)) == len(all_slots)
    assert all(addr % 8 == 0 for addr in all_slots)

    # 4. COMMON allocations do not overlap each other or the GAT.
    spans = [
        (addr, addr + inputs.commons[name][0])
        for name, addr in layout.common_addr.items()
    ]
    for group in layout.groups:
        spans.append((group.start, group.start + group.size))
    spans.sort()
    for (a_start, a_end), (b_start, __) in zip(spans, spans[1:]):
        assert a_end <= b_start

    # 5. Text is below data; section bases are properly aligned.
    assert layout.text_end <= layout.options.data_base
    from repro.objfile.sections import SectionKind

    for (index, kind), base in layout.module_base.items():
        if kind is SectionKind.TEXT:
            assert base % 16 == 0


@settings(max_examples=10, deadline=None)
@given(modules=module_sets())
def test_sorted_commons_are_monotone_by_size(modules):
    inputs = resolve_inputs(modules)
    layout = compute_layout(inputs, LayoutOptions(sort_commons=True))
    ordered = sorted(layout.common_addr.items(), key=lambda kv: kv[1])
    sizes = [inputs.commons[name][0] for name, __ in ordered]
    assert sizes == sorted(sizes)
