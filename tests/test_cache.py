"""The content-addressed artifact cache and its build-layer integration."""

import pytest

from repro.benchsuite import build_stdlib
from repro.benchsuite.suite import apply_scale, scaled_sources
from repro.cache import ArtifactCache, toolchain_stamp
from repro.experiments import build
from repro.linker.executable import dump_executable, load_executable


@pytest.fixture()
def disk_cache(tmp_path):
    """A configured ArtifactCache, restored to the previous state after."""
    cache = ArtifactCache(tmp_path)
    previous = build.configure_cache(cache)
    yield cache
    build.configure_cache(previous)


# -- ArtifactCache primitives --------------------------------------------------


def test_cache_roundtrip_and_counters(tmp_path):
    cache = ArtifactCache(tmp_path, stamp="s1")
    key = cache.key({"a": 1, "b": [1, 2]})
    assert cache.get("objects", key) is None
    cache.put("objects", key, b"payload")
    assert cache.get("objects", key) == b"payload"
    assert cache.stats.hits == {"objects": 1}
    assert cache.stats.misses == {"objects": 1}


def test_cache_key_is_canonical_and_stamped(tmp_path):
    cache1 = ArtifactCache(tmp_path, stamp="s1")
    cache2 = ArtifactCache(tmp_path, stamp="s2")
    # Key order in the payload must not matter; the stamp must.
    assert cache1.key({"a": 1, "b": 2}) == cache1.key({"b": 2, "a": 1})
    assert cache1.key({"a": 1}) != cache1.key({"a": 2})
    assert cache1.key({"a": 1}) != cache2.key({"a": 1})


def test_toolchain_stamp_stable():
    assert toolchain_stamp() == toolchain_stamp()
    assert len(toolchain_stamp()) == 16


def test_cache_kinds_do_not_collide(tmp_path):
    cache = ArtifactCache(tmp_path, stamp="s")
    key = cache.key({"x": 1})
    cache.put("exe", key, b"exe-bytes")
    assert cache.get("run", key) is None
    assert cache.get("exe", key) == b"exe-bytes"


# -- executable serializer -----------------------------------------------------


def test_executable_serializer_roundtrip(toolchain):
    result = toolchain("int main() { __putint(7); return 0; }")
    assert result.output == "7\n"


def test_executable_dump_load_bit_identical(libmc, crt0):
    from repro.linker import link
    from repro.machine import run
    from repro.minicc import compile_module

    source = "int g; int main() { g = 41; __putint(g + 1); return 0; }"
    exe = link([crt0, compile_module(source, "m.o")], [libmc])
    data = dump_executable(exe)
    loaded = load_executable(data)
    assert dump_executable(loaded) == data
    assert loaded.entry == exe.entry
    assert loaded.gp_values == exe.gp_values
    assert loaded.symbols == exe.symbols
    assert [(s.vaddr, s.data) for s in loaded.segments] == [
        (s.vaddr, s.data) for s in exe.segments
    ]
    assert loaded.zeroed == exe.zeroed
    assert [vars(p) for p in loaded.procs] == [vars(p) for p in exe.procs]
    # The deserialized image must actually run.
    assert run(loaded, timed=False).output == run(exe, timed=False).output


def test_executable_load_rejects_damage():
    from repro.linker.executable import ExecutableFormatError

    with pytest.raises(ExecutableFormatError):
        load_executable(b"XXXX" + b"\0" * 64)


# -- build-layer integration ---------------------------------------------------


def test_warm_cache_serves_everything(disk_cache):
    """After one cold pass, a fresh process (cleared memoization) serves
    objects, executables, stats, and runs purely from disk."""
    cold = build.run_variant("eqntott", "each", "om-full", 1)
    cold_stats = build.variant_stats("eqntott", "each", "om-full", 1)
    build.clear_caches()
    disk_cache.stats.hits.clear()
    disk_cache.stats.misses.clear()

    warm = build.run_variant("eqntott", "each", "om-full", 1)
    warm_stats = build.variant_stats("eqntott", "each", "om-full", 1)
    assert disk_cache.stats.total_misses == 0
    assert disk_cache.stats.total_hits > 0
    assert warm == cold
    assert warm_stats.stats == cold_stats.stats
    assert vars(warm_stats.counters) == vars(cold_stats.counters)


def test_cached_executable_bit_identical_to_fresh(disk_cache):
    """Acceptance: cached-vs-fresh executables are bit-identical."""
    for variant in ("ld", "om-none", "om-full"):
        cached = build.link_variant("li", "each", variant, 1)
        build.clear_caches()
        served = build.link_variant("li", "each", variant, 1)  # disk hit
        previous = build.configure_cache(None)  # fully fresh rebuild
        try:
            fresh = build.link_variant("li", "each", variant, 1)
        finally:
            build.configure_cache(previous)
        assert dump_executable(served) == dump_executable(fresh)
        assert dump_executable(cached) == dump_executable(fresh)


def test_clear_caches_clears_stdlib_archive():
    """Regression: ``clear_caches`` must drop ``build_stdlib``'s
    memoized archive too, not leave a stale stdlib behind."""
    build_stdlib()
    assert build_stdlib.cache_info().currsize > 0
    build.clear_caches()
    assert build_stdlib.cache_info().currsize == 0


# -- apply_scale ---------------------------------------------------------------


def test_apply_scale_rewrites_scale_line():
    assert apply_scale("int SCALE = 10;\nint x;", 3) == "int SCALE = 3;\nint x;"


def test_apply_scale_none_is_identity():
    assert apply_scale("int x;", None) == "int x;"


def test_apply_scale_raises_without_scale_line():
    """Regression: a typo'd SCALE line must not silently run the
    default workload."""
    with pytest.raises(ValueError):
        apply_scale("int SCAIE = 10;", 3)


def test_scaled_sources_touches_main_only():
    sources = scaled_sources("eqntott", 2)
    assert sources[0][0] == "main.mc"
    assert "int SCALE = 2;" in sources[0][1]
    from repro.benchsuite.suite import program_sources

    assert sources[1:] == program_sources("eqntott")[1:]


# -- variant cross-contamination (cache boundary) ------------------------------


def test_ld_after_om_full_bit_identical(disk_cache):
    """Regression: linking ``ld`` after ``om-full`` from the same
    memoized objects must give the same image as a fresh build — no
    in-place mutation may leak through the cache boundary."""
    build.link_variant("eqntott", "each", "om-full", 1)
    after_om = build.link_variant("eqntott", "each", "ld", 1)

    previous = build.configure_cache(None)
    try:
        fresh = build.link_variant("eqntott", "each", "ld", 1)
    finally:
        build.configure_cache(previous)
    assert dump_executable(after_om) == dump_executable(fresh)


def test_memoized_objects_unchanged_by_all_variants():
    """Every variant links from copies; the memoized objects and the
    stdlib archive must be byte-for-byte unchanged afterwards."""
    from repro.objfile.serialize import dump_archive

    previous = build.configure_cache(None)
    try:
        objects, lib = build.build_objects("li", "each", 1)
        before = dump_archive(objects)
        before_lib = dump_archive(lib.members)
        for variant in build.VARIANTS:
            build.link_variant("li", "each", variant, 1)
        build.run_variant("li", "each", "om-full", 1)
        assert dump_archive(objects) == before
        assert dump_archive(lib.members) == before_lib
    finally:
        build.configure_cache(previous)


# -- single-flight coalescing --------------------------------------------------


def test_single_flight_coalesces_concurrent_identical_work():
    import threading
    import time

    from repro.cache import SingleFlight

    flights = SingleFlight()
    n = 6
    release = threading.Event()
    calls = []
    results = []

    def thunk():
        calls.append(1)
        assert release.wait(timeout=10)
        return "built"

    def worker():
        results.append(flights.do("key", thunk))

    threads = [threading.Thread(target=worker) for _ in range(n)]
    for t in threads:
        t.start()
    # The leader is parked inside the thunk; hold it there until every
    # other thread has demonstrably joined its flight, so the test is
    # deterministic rather than a thread-scheduling lottery.
    deadline = time.monotonic() + 10
    while flights.coalesced < n - 1:
        assert time.monotonic() < deadline, "followers never joined"
        time.sleep(0.001)
    release.set()
    for t in threads:
        t.join()

    assert len(calls) == 1  # the work ran once
    assert [value for value, _ in results] == ["built"] * n
    assert sum(1 for _, led in results if led) == 1
    assert flights.started == 1
    assert flights.coalesced == n - 1


def test_single_flight_propagates_leader_failure_then_recovers():
    from repro.cache import SingleFlight

    flights = SingleFlight()

    def boom():
        raise RuntimeError("leader failed")

    with pytest.raises(RuntimeError, match="leader failed"):
        flights.do("key", boom)
    # The failed flight is closed out: the next caller leads afresh.
    value, led = flights.do("key", lambda: "second try")
    assert (value, led) == ("second try", True)
    assert flights.started == 2


def test_single_flight_helper_and_distinct_keys():
    from repro.cache import single_flight

    assert single_flight("test-cache-k1", lambda: 1) == (1, True)
    assert single_flight("test-cache-k2", lambda: 2) == (2, True)


def test_cache_stats_record_is_thread_safe(tmp_path):
    import threading

    cache = ArtifactCache(tmp_path, stamp="s")
    key = cache.key({"x": 1})
    cache.put("objects", key, b"data")

    def hammer():
        for _ in range(300):
            cache.get("objects", key)
            cache.get("objects", "0" * 64)

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert cache.stats.hits["objects"] == 1200
    assert cache.stats.misses["objects"] == 1200


# -- crash consistency ---------------------------------------------------------


def test_put_killed_before_fsync_publishes_nothing(tmp_path, monkeypatch):
    """A writer dying mid-put must leave no entry and no temp litter."""
    import repro.cache as cache_mod

    cache = ArtifactCache(tmp_path, stamp="s")
    key = cache.key({"x": 1})

    def crash(handle):
        raise RuntimeError("simulated crash before durability")

    monkeypatch.setattr(cache_mod, "_fsync_file", crash)
    with pytest.raises(RuntimeError, match="simulated crash"):
        cache.put("objects", key, b"half-written")
    monkeypatch.undo()

    # Nothing was published, and the temp file was cleaned up.
    assert cache.get("objects", key) is None
    assert cache.stats.misses == {"objects": 1}
    assert not list(tmp_path.rglob(".tmp-*"))

    # The same writer path works once writes are durable again.
    cache.put("objects", key, b"half-written")
    assert cache.get("objects", key) == b"half-written"


def test_torn_entry_is_quarantined_not_served(tmp_path):
    """A corrupt published entry costs one miss, then disappears."""
    cache = ArtifactCache(tmp_path, stamp="s")
    key = cache.key({"x": 2})
    cache.put("objects", key, b"good bytes")
    path = tmp_path / "objects" / key[:2] / key[2:]

    # Truncate mid-payload, as a crashed pre-envelope writer would.
    path.write_bytes(path.read_bytes()[:-3])
    assert cache.get("objects", key) is None
    assert not path.exists()  # quarantined, not left to poison reads
    assert cache.stats.misses == {"objects": 1}
    assert cache.stats.errors == {}

    # Garbage that never had an envelope is equally rejected.
    cache.put("objects", key, b"good bytes")
    path.write_bytes(b"\x00\x01\x02")
    assert cache.get("objects", key) is None
    assert not path.exists()


def test_quarantine_emits_trace_event(tmp_path):
    from repro.obs.trace import TraceLog

    trace = TraceLog()
    cache = ArtifactCache(tmp_path, stamp="s", trace=trace)
    key = cache.key({"x": 3})
    cache.put("objects", key, b"payload")
    path = tmp_path / "objects" / key[:2] / key[2:]
    path.write_bytes(b"not an envelope")
    assert cache.get("objects", key) is None
    names = [event["name"] for event in trace.events]
    assert "cache.quarantine" in names


def test_get_counts_errors_separately_from_misses(tmp_path):
    """Only ENOENT is cold-cache behavior; EISDIR & co. are errors."""
    from repro.obs.trace import TraceLog

    trace = TraceLog()
    cache = ArtifactCache(tmp_path, stamp="s", trace=trace)
    key = cache.key({"x": 4})

    # A directory squatting on the entry path: read fails, not-absent.
    path = tmp_path / "objects" / key[:2] / key[2:]
    path.mkdir(parents=True)
    assert cache.get("objects", key) is None
    assert cache.stats.errors == {"objects": 1}
    assert cache.stats.misses == {}
    assert cache.stats.total_errors == 1
    names = [event["name"] for event in trace.events]
    assert "cache.error" in names

    # A genuinely absent entry still counts as a plain miss.
    assert cache.get("objects", cache.key({"x": 5})) is None
    assert cache.stats.misses == {"objects": 1}
    assert cache.stats.errors == {"objects": 1}


def test_compute_toolchain_stamp_tracks_source_edits(tmp_path, monkeypatch):
    """The uncached stamp follows the code on disk; the memoized
    ``toolchain_stamp`` is only for short-lived tools."""
    import repro
    from repro.cache import compute_toolchain_stamp

    assert compute_toolchain_stamp() == toolchain_stamp()

    # Stand up a fake package tree and "upgrade" it in place: the
    # uncached stamp must change, which is what lets a daemon pick up
    # a new toolchain at its next start.
    pkg = tmp_path / "fakerepro"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text("VERSION = 1\n")
    monkeypatch.setattr(repro, "__file__", str(pkg / "__init__.py"))
    before = compute_toolchain_stamp()
    assert before == compute_toolchain_stamp()
    (pkg / "mod.py").write_text("VERSION = 2\n")
    assert compute_toolchain_stamp() != before
