"""Property: OM's symbolic translation round-trips Decaf modules.

The Decaf twin of ``test_symbolic_roundtrip_property.py``: modules full
of vtable REFQUADs against procedure symbols, method code, and
dispatch sequences must survive translate/reassemble byte-for-byte —
including mixed-language programs, where MiniC and Decaf modules are
translated side by side.
"""

from hypothesis import given, settings, strategies as st

from repro.decafc import Options
from repro.decafc import compile_module as compile_decaf
from repro.fuzz.generate import GenConfig, RichDecafGen, generate_program
from repro.minicc import compile_module as compile_minic
from tests.test_symbolic_roundtrip_property import assert_roundtrip


def compile_modules(program, schedule):
    options = Options(schedule=schedule)
    objects = []
    for name, text in program.modules:
        front = compile_decaf if name.endswith(".dcf") else compile_minic
        objects.append(front(text, name.rsplit(".", 1)[0] + ".o", options))
    return objects


@settings(max_examples=12)
@given(seed=st.integers(0, 10_000), schedule=st.booleans())
def test_random_decaf_modules_roundtrip(seed, schedule):
    program = RichDecafGen(seed, GenConfig(language="decaf")).generate()
    for obj in compile_modules(program, schedule):
        assert_roundtrip(obj)


@settings(max_examples=8)
@given(seed=st.integers(0, 10_000))
def test_random_mixed_modules_roundtrip(seed):
    program = generate_program(seed, GenConfig(language="mixed"))
    assert any(name.endswith(".mc") for name, __ in program.modules)
    for obj in compile_modules(program, schedule=True):
        assert_roundtrip(obj)
