"""The perf-regression gate, unit-tested against synthetic reports.

The real ``bench`` suite takes seconds and exercises the whole
pipeline (CI runs it); these tests pin the *gate logic* — direction
rules, tolerance math, the zero-baseline absolute path, and the CLI
exit codes — with hand-built report dicts.
"""

import json

import pytest

from repro.experiments.bench import BENCH_SCHEMA
from repro.experiments.regress import (
    BASELINE_SCHEMA,
    _check,
    compare,
    make_baselines,
    regress_main,
    spec_for,
)


def _report(metrics):
    return {"schema": BENCH_SCHEMA, "components": ["x"], "metrics": metrics}


# -- default specs -------------------------------------------------------------


def test_spec_rules_classify_metric_families():
    # Wall clock: lower is better, generous slack.
    assert spec_for("build.eqntott.ld.link_seconds") == ("lower", 3.0)
    assert spec_for("wpo.cold_link_seconds") == ("lower", 3.0)
    assert spec_for("wpo.edit_relink_seconds") == ("lower", 3.0)
    assert spec_for("serve.warm.p95_ms") == ("lower", 5.0)
    # Throughput-ish: higher is better.
    assert spec_for("serve.cold.throughput_rps") == ("higher", 0.85)
    assert spec_for("serve.warm_speedup") == ("higher", 0.95)
    # Deterministic: exact.
    assert spec_for("build.eqntott.om-full.cycles") == ("either", 0.0)
    assert spec_for("wpo.warm_misses") == ("either", 0.0)
    assert spec_for("serve.identity_residual") == ("either", 0.0)
    assert spec_for("build.compress.addr_loads_after") == ("either", 0.0)
    # Unknown names get the forgiving fallback.
    assert spec_for("something.new") == ("either", 0.5)


def test_make_baselines_pins_every_metric():
    report = _report({"a.cycles": 100, "b.link_seconds": 1.5})
    baselines = make_baselines(report)
    assert baselines["schema"] == BASELINE_SCHEMA
    assert baselines["metrics"]["a.cycles"] == {
        "value": 100, "direction": "either", "tolerance": 0.0,
    }
    assert baselines["metrics"]["b.link_seconds"]["direction"] == "lower"


# -- the comparison math -------------------------------------------------------


def test_check_lower_direction_fails_only_on_increase():
    entry = {"value": 1.0, "direction": "lower", "tolerance": 0.5}
    assert _check("t", entry, 1.4)["ok"]        # within slack
    assert _check("t", entry, 0.01)["ok"]       # improvements always pass
    assert not _check("t", entry, 1.6)["ok"]    # past slack


def test_check_higher_direction_fails_only_on_decrease():
    entry = {"value": 100.0, "direction": "higher", "tolerance": 0.2}
    assert _check("t", entry, 85.0)["ok"]
    assert _check("t", entry, 500.0)["ok"]      # faster is never a failure
    assert not _check("t", entry, 79.0)["ok"]


def test_check_either_direction_is_symmetric():
    entry = {"value": 50.0, "direction": "either", "tolerance": 0.1}
    assert _check("t", entry, 54.0)["ok"]
    assert _check("t", entry, 46.0)["ok"]
    assert not _check("t", entry, 56.0)["ok"]
    assert not _check("t", entry, 44.0)["ok"]


def test_check_zero_tolerance_demands_exactness():
    entry = {"value": 300644.0, "direction": "either", "tolerance": 0.0}
    assert _check("cycles", entry, 300644.0)["ok"]
    assert not _check("cycles", entry, 300645.0)["ok"]


def test_check_zero_baseline_compares_absolutely():
    # deviation relative to 0 is undefined; the gate falls back to
    # |value| <= tolerance, so a 0-tolerance 0-baseline pins exact zero.
    exact = {"value": 0.0, "direction": "either", "tolerance": 0.0}
    assert _check("residual", exact, 0.0)["ok"]
    assert not _check("residual", exact, 1.0)["ok"]
    slack = {"value": 0.0, "direction": "lower", "tolerance": 2.0}
    assert _check("failed", slack, 1.5)["ok"]


def test_compare_reports_missing_and_new_metrics():
    baselines = make_baselines(_report({"a.cycles": 10, "b.cycles": 20}))
    verdict = compare(baselines, _report({"a.cycles": 10, "c.cycles": 30}))
    assert not verdict["ok"]  # a pinned metric vanished: that's a failure
    assert verdict["missing_metrics"] == ["b.cycles"]
    assert verdict["new_metrics"] == ["c.cycles"]
    assert verdict["checked"] == 1


def test_compare_rejects_schema_mismatches():
    good = _report({"a.cycles": 1})
    with pytest.raises(ValueError, match="report schema"):
        compare(make_baselines(good), {"schema": "bogus/9", "metrics": {}})
    with pytest.raises(ValueError, match="baseline schema"):
        compare({"schema": "bogus/9", "metrics": {}}, good)


# -- the CLI -------------------------------------------------------------------


def _write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return path


def test_regress_cli_round_trip(tmp_path, capsys):
    report = _write(tmp_path, "report.json",
                    _report({"a.cycles": 100, "b.throughput_rps": 50.0}))
    baselines = tmp_path / "baselines.json"
    # Refresh procedure: --update-baselines writes the pin file.
    assert regress_main(["--report", str(report),
                         "--baselines", str(baselines),
                         "--update-baselines"]) == 0
    assert json.loads(baselines.read_text())["schema"] == BASELINE_SCHEMA

    # A clean comparison passes and writes the verdict.
    verdict_path = tmp_path / "verdict.json"
    assert regress_main(["--report", str(report),
                         "--baselines", str(baselines),
                         "--out", str(verdict_path)]) == 0
    assert json.loads(verdict_path.read_text())["ok"]
    assert "-> OK" in capsys.readouterr().out


def test_regress_cli_inject_trips_the_gate(tmp_path, capsys):
    report = _write(tmp_path, "report.json",
                    _report({"a.cycles": 100, "b.throughput_rps": 50.0}))
    baselines = tmp_path / "baselines.json"
    regress_main(["--report", str(report), "--baselines", str(baselines),
                  "--update-baselines"])
    capsys.readouterr()
    assert regress_main(["--report", str(report),
                         "--baselines", str(baselines),
                         "--inject", "b.throughput_rps=1.0"]) == 1
    out = capsys.readouterr().out
    assert "FAIL  b.throughput_rps" in out
    assert "-> FAIL" in out


def test_regress_cli_inject_rejects_unknown_metric(tmp_path):
    report = _write(tmp_path, "report.json", _report({"a.cycles": 1}))
    baselines = tmp_path / "baselines.json"
    regress_main(["--report", str(report), "--baselines", str(baselines),
                  "--update-baselines"])
    with pytest.raises(SystemExit):
        regress_main(["--report", str(report),
                      "--baselines", str(baselines),
                      "--inject", "no.such.metric=1"])


def test_committed_baselines_are_loadable_and_consistent():
    """The pin file CI compares against must parse and self-describe."""
    doc = json.loads(open("benchmarks/baselines/bench.json").read())
    assert doc["schema"] == BASELINE_SCHEMA
    assert doc["bench_schema"] == BENCH_SCHEMA
    assert doc["metrics"], "empty baseline file"
    for name, entry in doc["metrics"].items():
        assert entry["direction"] in ("lower", "higher", "either"), name
        assert entry["tolerance"] >= 0.0, name
        # Each committed entry carries this metric family's default spec.
        assert (entry["direction"], entry["tolerance"]) == spec_for(name), name
