"""OM transformation provenance: the audit trail and the explain CLI."""

import pytest

from repro.minicc import compile_module
from repro.obs import provenance
from repro.obs.trace import TraceLog
from repro.om import OMLevel, OMOptions, om_link

SOURCE = """
extern int gcd(int a, int b);
int helper(int x) { return x * 3 + 1; }
int unused(int x) { return x - 7; }
int main() {
    int i;
    int s = 0;
    for (i = 0; i < 5; i++) { s += helper(i); }
    __putint(s + gcd(24, 36));
    return 0;
}
"""


def _traced_link(libmc, crt0, level, **options):
    trace = TraceLog()
    objs = [crt0, compile_module(SOURCE, "prov.o")]
    result = om_link(
        objs, [libmc], level=level, options=OMOptions(**options), trace=trace
    )
    return result, trace


def test_events_carry_full_payload(libmc, crt0):
    result, trace = _traced_link(libmc, crt0, OMLevel.FULL)
    events = provenance.events(trace)
    assert events
    for args in events:
        assert args["action"] in provenance.ACTIONS
        assert args["pass_name"]
        assert args["module"]
        assert args["proc"]
        assert args["before"]
        assert args["after"]
        assert args["reason"]
    # Deleted instructions record their pre-layout pc.
    deletes = [a for a in events if a["action"] == "delete"]
    assert deletes
    assert all(isinstance(a["pc"], int) for a in deletes)


def test_full_reconciles_exactly_with_counters(libmc, crt0):
    result, trace = _traced_link(libmc, crt0, OMLevel.FULL)
    assert provenance.reconcile(trace, result.counters) == {}
    # Every deletion the figures count has exactly one audit line.
    deletes = [a for a in provenance.events(trace) if a["action"] == "delete"]
    assert len(deletes) == result.counters.instructions_deleted


def test_simple_reconciles_exactly_with_counters(libmc, crt0):
    result, trace = _traced_link(libmc, crt0, OMLevel.SIMPLE)
    assert provenance.reconcile(trace, result.counters) == {}
    # OM-simple never deletes, it nullifies in place.
    actions = {a["action"] for a in provenance.events(trace)}
    assert "delete" not in actions
    nulls = [a for a in provenance.events(trace) if a["action"] == "nullify"]
    assert len(nulls) == result.counters.instructions_nulled


def test_gc_drop_events(libmc, crt0):
    result, trace = _traced_link(
        libmc, crt0, OMLevel.FULL, remove_dead_procs=True
    )
    drops = [a for a in provenance.events(trace) if a["action"] == "gc-drop"]
    assert len(drops) == result.counters.procs_removed
    assert "unused" in {a["proc"] for a in drops}
    assert provenance.reconcile(trace, result.counters) == {}


def test_events_filter_by_proc(libmc, crt0):
    _, trace = _traced_link(libmc, crt0, OMLevel.FULL)
    all_events = provenance.events(trace)
    main_only = provenance.events(trace, proc="main")
    assert main_only
    assert len(main_only) < len(all_events)
    assert all(a["proc"] == "main" for a in main_only)


def test_sched_emits_move_events(libmc, crt0):
    result, trace = _traced_link(libmc, crt0, OMLevel.FULL, schedule=True)
    moves = [
        a
        for a in provenance.events(trace)
        if a["action"] == "move" and a["pass_name"] == "sched"
    ]
    assert moves  # rescheduling repositions something in this program
    assert provenance.reconcile(trace, result.counters) == {}


def test_format_event_is_one_line():
    line = provenance.format_event(
        {
            "round": 1,
            "pass_name": "addr-loads",
            "module": "m.o",
            "proc": "main",
            "pc": 0x120000040,
            "action": "delete",
            "before": "ldq t0, 16(gp)",
            "after": "(deleted)",
            "reason": "address folded into use",
        }
    )
    assert line == (
        "[round1/addr-loads] m.o:main pc=0x120000040 delete: "
        "ldq t0, 16(gp) -> (deleted)  (address folded into use)"
    )
    assert "\n" not in line


def test_verify_report_surfaced_on_result_and_trace(libmc, crt0):
    result, trace = _traced_link(libmc, crt0, OMLevel.FULL, verify=True)
    report = result.verify
    assert report is not None
    assert report.instructions > 0
    assert report.problems == []
    events = trace.select(name="om.verify.report")
    assert len(events) == 1
    assert events[0]["args"]["instructions"] == report.instructions
    assert events[0]["args"]["gat_entries"] == report.gat_entries


def test_om_spans_cover_phases(libmc, crt0):
    _, trace = _traced_link(libmc, crt0, OMLevel.FULL, schedule=True)
    names = {e["name"] for e in trace.select(cat="om") if e["ph"] == "X"}
    assert {"om.translate", "om.round0", "om.sched", "om.finalize"} <= names


def test_explain_cli_smoke(capsys):
    from repro.experiments.__main__ import main

    code = main(["explain", "compress", "--scale", "1", "--proc", "main"])
    out = capsys.readouterr().out
    assert code == 0
    assert "provenance events" in out
    # Audit lines have the pass/pc/action anatomy.
    assert "pc=0x" in out
    assert " -> " in out
    assert "verify:" in out


def test_explain_cli_reports_reconciliation(capsys):
    from repro.experiments.__main__ import main

    code = main(["explain", "compress", "--scale", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "provenance events reconcile exactly with pass counters" in out
