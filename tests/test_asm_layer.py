"""Unit tests for the symbolic assembler layer, crt0, and disassembler."""

import pytest

from repro.isa.asm import Assembler, AsmError
from repro.isa.disasm import disassemble, format_instruction
from repro.isa.encoding import decode_stream
from repro.isa.instruction import Instruction
from repro.isa.registers import Reg
from repro.linker import make_crt0
from repro.objfile.relocations import LituseKind, RelocType
from repro.objfile.sections import SectionKind
from repro.objfile.symbols import SymbolKind


def test_begin_end_proc_records_size():
    asm = Assembler("m.o")
    asm.begin_proc("f", frame_size=32)
    asm.emit(Instruction.nop())
    asm.emit(Instruction.jump("ret", Reg.ZERO, Reg.RA, 1))
    asm.end_proc()
    obj = asm.finish()
    sym = obj.find_symbol("f")
    assert sym.kind is SymbolKind.PROC
    assert sym.offset == 0 and sym.size == 8
    assert sym.proc.frame_size == 32


def test_nested_proc_rejected():
    asm = Assembler("m.o")
    asm.begin_proc("f")
    with pytest.raises(AsmError):
        asm.begin_proc("g")


def test_unterminated_proc_rejected():
    asm = Assembler("m.o")
    asm.begin_proc("f")
    with pytest.raises(AsmError):
        asm.finish()


def test_duplicate_label_rejected():
    asm = Assembler("m.o")
    asm.begin_proc("f")
    asm.label("L")
    with pytest.raises(AsmError):
        asm.label("L")


def test_intra_module_branch_resolved_without_reloc():
    asm = Assembler("m.o")
    asm.begin_proc("f")
    asm.label("top")
    asm.emit(Instruction.nop())
    asm.emit(Instruction.branch("br", Reg.ZERO, 0), branch=("top", 0))
    asm.end_proc()
    obj = asm.finish()
    assert not [r for r in obj.relocations if r.type is RelocType.BRADDR]
    instrs = decode_stream(bytes(obj.section(SectionKind.TEXT).data))
    # br at offset 4 targeting offset 0: disp = (0 - 8) / 4 = -2
    assert instrs[1].disp == -2


def test_extern_branch_creates_undef_symbol():
    asm = Assembler("m.o")
    asm.begin_proc("f")
    asm.emit(Instruction.branch("bsr", Reg.RA, 0), branch=("far", 0))
    asm.end_proc()
    obj = asm.finish()
    assert obj.find_symbol("far").kind is SymbolKind.UNDEF
    braddr = [r for r in obj.relocations if r.type is RelocType.BRADDR]
    assert braddr[0].symbol == "far"


def test_gpdisp_without_pair_rejected():
    asm = Assembler("m.o")
    asm.begin_proc("f")
    asm.emit(Instruction.mem("ldah", Reg.GP, Reg.PV, 0), gpdisp_base="f")
    asm.end_proc()
    with pytest.raises(AsmError, match="no paired lda"):
        asm.finish()


def test_data_quad_label_resolves_proc_offset():
    asm = Assembler("m.o")
    asm.begin_proc("f")
    asm.emit(Instruction.nop())
    asm.label("case1")
    asm.emit(Instruction.nop())
    asm.end_proc()
    asm.data_symbol("jt", SectionKind.DATA, exported=False)
    asm.data_quad_label(SectionKind.DATA, "f", "case1")
    obj = asm.finish()
    ref = [r for r in obj.relocations if r.type is RelocType.REFQUAD][0]
    assert ref.symbol == "f" and ref.addend == 4


def test_lituse_links_to_literal_offset():
    asm = Assembler("m.o")
    asm.begin_proc("f")
    load = asm.emit(
        Instruction.mem("ldq", Reg.T0, Reg.GP, 0), literal=("sym", 16)
    )
    asm.emit(Instruction.nop())
    asm.emit(
        Instruction.mem("ldq", Reg.T1, Reg.T0, 0),
        lituse=(load, LituseKind.BASE),
    )
    asm.end_proc()
    obj = asm.finish()
    literal = [r for r in obj.relocations if r.type is RelocType.LITERAL][0]
    lituse = [r for r in obj.relocations if r.type is RelocType.LITUSE][0]
    assert literal.addend == 16
    assert lituse.addend == literal.offset == 0
    assert lituse.offset == 8


def test_bss_symbol_alignment():
    asm = Assembler("m.o")
    asm.data_bytes(SectionKind.DATA, b"x")
    sym = asm.bss_symbol("z", 24, kind=SectionKind.BSS, align=16)
    assert sym.offset % 16 == 0
    obj = asm.finish()
    assert obj.sections[SectionKind.BSS].bss_size >= 24


# -- crt0 ---------------------------------------------------------------------


def test_crt0_shape():
    crt0 = make_crt0()
    start = crt0.find_symbol("__start")
    assert start.kind is SymbolKind.PROC and start.offset == 0
    assert crt0.find_symbol("main").kind is SymbolKind.UNDEF
    types = {r.type for r in crt0.relocations}
    assert {
        RelocType.GPDISP,
        RelocType.LITERAL,
        RelocType.LITUSE,
        RelocType.HINT,
    } <= types
    instrs = decode_stream(bytes(crt0.section(SectionKind.TEXT).data))
    assert instrs[0].op.name == "ldah" and instrs[0].ra == Reg.GP
    assert instrs[-1].op.format.value == "pal"


# -- disassembler ----------------------------------------------------------------


def test_format_instruction_styles():
    assert format_instruction(Instruction.mem("ldq", Reg.T0, Reg.GP, 188)) == (
        "ldq t0, 188(gp)"
    )
    assert format_instruction(Instruction.nop()) == "nop"
    assert (
        format_instruction(Instruction.opr("addq", Reg.T0, 5, Reg.T1, lit=True))
        == "addq t0, 0x5, t1"
    )
    assert format_instruction(Instruction.jump("ret", Reg.ZERO, Reg.RA, 1)) == (
        "ret zero, (ra), 1"
    )
    assert format_instruction(Instruction.pal(0x82)) == "call_pal putint"


def test_format_branch_with_pc():
    text = format_instruction(Instruction.branch("bne", Reg.T0, 3), pc=0x1000)
    assert text == "bne t0, 0x1010"  # pc + 4 + 4*disp


def test_disassemble_handles_bad_words():
    data = (0x07 << 26).to_bytes(4, "little")
    lines = disassemble(data, base=0)
    assert ".word" in lines[0]
