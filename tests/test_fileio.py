"""Object/archive file I/O tests."""

from repro.benchsuite import build_stdlib
from repro.minicc import compile_module
from repro.objfile.fileio import (
    load_archive_file,
    load_object_file,
    save_archive,
    save_object,
)
from repro.objfile.sections import SectionKind


def test_object_file_roundtrip(tmp_path):
    obj = compile_module("int g; int f() { return g + 1; }", "f.o")
    path = save_object(obj, tmp_path / "f.o")
    back = load_object_file(path)
    assert back.name == obj.name
    assert bytes(back.section(SectionKind.TEXT).data) == bytes(
        obj.section(SectionKind.TEXT).data
    )
    assert len(back.relocations) == len(obj.relocations)


def test_archive_file_roundtrip(tmp_path):
    lib = build_stdlib()
    path = save_archive(lib, tmp_path / "libmc.a")
    back = load_archive_file(path)
    assert len(back) == len(lib)
    assert back.member_defining("__divq") is not None
    assert back.name == "libmc"
