"""A guided tour of the paper's transformations, with disassembly.

Shows one small procedure before and after OM-simple and OM-full:
address loads turning into GP-relative references or vanishing, the
call-site bookkeeping (PV-load, JSR, GP-reset) collapsing to a bare BSR,
and the GAT shrinking.

Run:  python examples/address_optimization_tour.py
"""

from repro.benchsuite import build_stdlib
from repro.isa.disasm import disassemble
from repro.linker import link, make_crt0
from repro.minicc import compile_module
from repro.om import OMLevel, om_link

SOURCE = """
int counter;
int flags;
extern int helper(int x);

int main() {
    counter = helper(flags) + 1;
    __putint(counter);
    return 0;
}
"""

HELPER = "int helper(int x) { return x + 41; }"


def show(title: str, executable) -> None:
    print(f"--- {title} " + "-" * (60 - len(title)))
    proc = executable.proc_named("main")
    start = proc.addr - executable.segments[0].vaddr
    body = executable.text_bytes()[start : start + proc.size]
    for line in disassemble(body, proc.addr):
        print(" ", line)
    print(f"  (GAT: {executable.gat_size} bytes, GP = {executable.gp:#x})\n")


def main() -> None:
    objects = [
        make_crt0(),
        compile_module(SOURCE, "main.o"),
        compile_module(HELPER, "helper.o"),
    ]
    libmc = build_stdlib()

    print("The conservative model: every global via a GAT address load")
    print("(ldq rX, slot(gp)), calls = PV-load + jsr + 2-instruction GP")
    print("reset.  Watch them disappear.\n")

    show("standard link (no LTO)", link(objects, [libmc]))
    simple = om_link(objects, [libmc], level=OMLevel.SIMPLE)
    show("OM-simple: replacement only, no code motion", simple.executable)
    print(
        "  note the NOPs where address loads and GP-resets used to be,\n"
        "  GP-relative lda/ldq ...(gp) references, and jsr -> bsr.\n"
    )
    full = om_link(objects, [libmc], level=OMLevel.FULL)
    show("OM-full: moves GP setup, deletes instructions", full.executable)
    print(
        f"  instructions deleted: {full.counters.instructions_deleted}, "
        f"PV-loads removed: {full.counters.pv_loads_removed}, "
        f"GP-resets removed: {full.counters.gp_resets_removed}, "
        f"entry setups removed: {full.counters.entry_setups_removed}"
    )


if __name__ == "__main__":
    main()
