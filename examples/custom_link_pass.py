"""An ATOM-style custom link-time pass built on OM's symbolic form.

The paper argues that link-time translation to symbolic form "opens the
door to other link-time transformations, such as ... flexible program
instrumentation tools" (OM's sibling is ATOM).  This example writes a
miniature instrumenter: it inserts a procedure-entry counter into every
procedure of a fully linked program — including pre-compiled library
code — then reads the counters out of simulated memory.

The pass works exactly like OM's own passes: resolve the closed world,
translate to symbolic form, splice in instructions (no displacement
bookkeeping needed — reassembly recomputes everything), and finish with
the standard layout/relocation.

(This walk-through builds the pass by hand to show the mechanics; the
polished version of the same tool ships as
:mod:`repro.om.instrument.link_with_entry_counters`.)

Run:  python examples/custom_link_pass.py
"""

from repro.benchsuite import build_stdlib
from repro.isa.instruction import Instruction
from repro.isa.registers import Reg
from repro.linker import make_crt0
from repro.linker.layout import compute_layout
from repro.linker.relocate import build_executable
from repro.linker.resolve import resolve_inputs
from repro.machine import Machine
from repro.minicc import compile_module
from repro.minicc.mcode import MInstr, MLabel
from repro.objfile.relocations import LituseKind
from repro.objfile.sections import Section, SectionKind
from repro.objfile.symbols import Binding, Symbol, SymbolKind
from repro.om.symbolic import reassemble_module, translate_module

COUNTERS = "__proc_counts"

PROGRAM = """
extern int isqrt(int x);
int main() {
    int i;
    int s = 0;
    for (i = 0; i < 20; i++) { s += isqrt(i * 1000); }
    __putint(s);
    return 0;
}
"""


def instrument(modules):
    """Insert an entry counter bump into every procedure.

    At procedure entry the scratch registers AT and T11 are dead by
    convention, and GP still holds the caller's value — valid here
    because the program has a single GAT.  The counter's address comes
    from a GAT literal with an addend, so the counters array needs just
    one base symbol.
    """
    proc_index: dict[str, int] = {}
    for module in modules:
        for proc in module.procs:
            if proc.name != "__start":  # GP not yet live at the true entry
                proc_index[proc.name] = len(proc_index)

    # Allocate the counters array in the first module's .data.
    home = modules[0]
    data = home.data_sections.setdefault(SectionKind.DATA, Section(SectionKind.DATA))
    data.align_to(8)
    base = data.size
    data.append(bytes(8 * len(proc_index)))
    home.other_symbols.append(
        Symbol(
            COUNTERS, SymbolKind.OBJECT, Binding.GLOBAL,
            SectionKind.DATA, base, 8 * len(proc_index),
        )
    )

    for module in modules:
        for proc in module.procs:
            index = proc_index.get(proc.name)
            if index is None:
                continue
            load = MInstr(
                Instruction.mem("ldq", Reg.AT, Reg.GP, 0),
                literal=(COUNTERS, 8 * index),
            )
            bump = [
                load,
                MInstr(
                    Instruction.mem("ldq", Reg.T11, Reg.AT, 0),
                    lituse=(load.uid, LituseKind.BASE),
                ),
                MInstr(Instruction.opr("addq", Reg.T11, 1, Reg.T11, lit=True)),
                MInstr(
                    Instruction.mem("stq", Reg.T11, Reg.AT, 0),
                    lituse=(load.uid, LituseKind.BASE),
                ),
            ]
            entry = next(
                i
                for i, item in enumerate(proc.items)
                if isinstance(item, MLabel) and item.name == proc.name
            )
            proc.items[entry + 1 : entry + 1] = bump
    return proc_index


def main() -> None:
    objects = [make_crt0(), compile_module(PROGRAM, "main.o")]
    inputs = resolve_inputs(objects, [build_stdlib()])

    modules = [translate_module(obj) for obj in inputs.modules]
    proc_index = instrument(modules)

    final = [reassemble_module(module)[0] for module in modules]
    final_inputs = resolve_inputs(final, [])
    layout = compute_layout(final_inputs)
    executable = build_executable(final_inputs, layout)

    machine = Machine(executable)
    result = machine.run()
    print("program output:", result.output.strip())
    print(f"{result.instructions} instructions "
          f"(instrumentation included), {result.cycles} cycles\n")

    counters_base = executable.symbol(COUNTERS)
    print("procedure entry counts (measured by the inserted probes):")
    for name, index in sorted(proc_index.items(), key=lambda kv: kv[1]):
        count = machine._load_q(counters_base + 8 * index)
        if count:
            print(f"  {name:12s} {count}")


if __name__ == "__main__":
    main()
