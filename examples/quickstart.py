"""Quickstart: compile a two-module MiniC program, link it with the
standard linker and with OM, run both on the simulated AXP, and compare.

Run:  python examples/quickstart.py
"""

from repro.benchsuite import build_stdlib
from repro.linker import link, make_crt0
from repro.machine import run
from repro.minicc import compile_module
from repro.om import OMLevel, om_link

MAIN = """
int total;
int squares[10];
extern int square(int x);

int main() {
    int i;
    total = 0;
    for (i = 0; i < 10; i++) {
        squares[i] = square(i);
        total += squares[i];
    }
    __putint(total);            /* 285 */
    __putint(total / 10);       /* 28: division is a library call */
    return 0;
}
"""

HELPER = """
int calls;
int square(int x) {
    calls = calls + 1;
    return x * x;
}
"""


def main() -> None:
    # Compile each module separately -- the conservative 64-bit model:
    # every global access is an address load through the GAT, every
    # call carries a PV-load and a GP-reset.
    objects = [
        make_crt0(),
        compile_module(MAIN, "main.o"),
        compile_module(HELPER, "helper.o"),
    ]
    libmc = build_stdlib()  # pre-compiled standard library archive

    baseline = run(link(objects, [libmc]))
    print("standard link output:", baseline.output.split())
    print(f"  {baseline.instructions} instructions, {baseline.cycles} cycles")

    for level in (OMLevel.SIMPLE, OMLevel.FULL):
        result = om_link(objects, [libmc], level=level)
        timed = run(result.executable)
        assert timed.output == baseline.output, "OM must preserve behaviour"
        stats = result.stats
        speedup = 100.0 * (baseline.cycles - timed.cycles) / baseline.cycles
        print(f"\nOM-{level.value}:")
        print(
            f"  address loads: {stats.before.addr_loads} -> "
            f"{stats.after.addr_loads} "
            f"(converted {stats.loads_converted}, "
            f"nullified {stats.loads_nullified})"
        )
        print(
            f"  GAT bytes: {stats.gat_bytes_before} -> {stats.gat_bytes_after}; "
            f"text bytes: {stats.text_bytes_before} -> {stats.text_bytes_after}"
        )
        print(f"  cycles: {baseline.cycles} -> {timed.cycles} ({speedup:+.1f}%)")


if __name__ == "__main__":
    main()
