"""Profile a benchmark: where do the cycles go, and what does OM save?

Uses the per-procedure profiler to show a benchmark's hot procedures —
including the library routines (like the software integer divide
``__divq``) that dominate, which is exactly why the paper's
library-inclusive link-time view matters — then compares the standard
link against OM-full.

Run:  python examples/profile_hotspots.py [program]
"""

import sys

from repro.benchsuite import PROGRAMS, build_program, build_stdlib
from repro.linker import link, make_crt0
from repro.machine.profile import profile
from repro.om import OMLevel, om_link


def show(title: str, executable) -> None:
    result = profile(executable)
    print(f"--- {title}: {result.run.instructions} instructions")
    for proc in result.procs[:10]:
        bar = "#" * int(40 * proc.fraction)
        print(f"  {proc.name:16s} {100 * proc.fraction:5.1f}%  {bar}")
    print()


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "spice"
    if name not in PROGRAMS:
        raise SystemExit(f"unknown benchmark {name!r}; choose from {PROGRAMS}")
    libmc = build_stdlib()
    objects = [make_crt0()] + build_program(name, "each", scale=1)

    baseline = link(objects, [libmc])
    show(f"{name} (standard link)", baseline)

    optimized = om_link(objects, [libmc], level=OMLevel.FULL)
    show(f"{name} (OM-full)", optimized.executable)

    print(
        "Note how much time sits in pre-compiled library routines — "
        "invisible to compile-time interprocedural optimization, fully "
        "optimizable at link time."
    )


if __name__ == "__main__":
    main()
