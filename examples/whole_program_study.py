"""Reproduce the paper's measurement protocol on one benchmark.

Builds a SPEC92-named benchmark in both of the paper's versions
(compile-each and compile-all), links each with the standard linker
and with OM at both levels, verifies bit-identical output, and prints
the static and dynamic rows the evaluation section reports.

Run:  python examples/whole_program_study.py [program]
"""

import sys

from repro.benchsuite import PROGRAMS, build_program, build_stdlib
from repro.linker import link, make_crt0
from repro.machine import run
from repro.om import OMLevel, OMOptions, om_link


def study(name: str) -> None:
    libmc = build_stdlib()
    crt0 = make_crt0()
    print(f"=== {name} ===")
    for mode in ("each", "all"):
        objects = [crt0] + build_program(name, mode)
        baseline = run(link(objects, [libmc]))
        print(f"\ncompile-{mode}: baseline {baseline.cycles} cycles, "
              f"{baseline.instructions} instructions")

        for level, schedule in (
            (OMLevel.SIMPLE, False),
            (OMLevel.FULL, False),
            (OMLevel.FULL, True),
        ):
            result = om_link(
                objects, [libmc], level=level, options=OMOptions(schedule=schedule)
            )
            timed = run(result.executable)
            assert timed.output == baseline.output
            stats = result.stats
            label = level.value + ("+sched" if schedule else "")
            improvement = 100.0 * (baseline.cycles - timed.cycles) / baseline.cycles
            removed = stats.frac_loads_removed
            print(
                f"  OM-{label:12s} perf {improvement:+5.2f}%   "
                f"addr loads removed {100 * removed:5.1f}%   "
                f"instrs -{100 * stats.frac_instructions_nullified:4.1f}%   "
                f"GAT {stats.gat_bytes_before}B -> {stats.gat_bytes_after}B"
            )


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "eqntott"
    if name not in PROGRAMS:
        raise SystemExit(f"unknown benchmark {name!r}; choose from {PROGRAMS}")
    study(name)


if __name__ == "__main__":
    main()
