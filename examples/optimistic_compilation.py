"""The paper's §6 alternative: optimistic compilation (the MIPS -G scheme).

Instead of optimizing at link time, compile each module *assuming* its
small variables will land within the GP window — one `lda` instead of a
GAT load.  The gamble usually pays; when the program's data outgrows the
window, the linker refuses to link and the programmer must recompile
with a lower threshold — the burden-shifting the paper criticizes.

Run:  python examples/optimistic_compilation.py
"""

from repro.benchsuite import build_stdlib
from repro.linker import LinkError, link, make_crt0
from repro.machine import run
from repro.minicc import Options, compile_module

SMALL = """
int hits;
int misses;
int main() {
    int i;
    for (i = 0; i < 50; i++) {
        if (i % 3) { hits += 1; } else { misses += 1; }
    }
    __putint(hits);
    __putint(misses);
    return 0;
}
"""

TOO_BIG = """
int table_a[8192];
int table_b[8192];
int tiny;
int main() {
    table_a[0] = 1;
    table_b[0] = 2;
    tiny = table_a[0] + table_b[0];
    __putint(tiny);
    return 0;
}
"""


def build_and_run(source: str, threshold: int):
    crt0 = make_crt0()
    lib = build_stdlib()
    obj = compile_module(source, "m.o", Options(small_data_threshold=threshold))
    exe = link([crt0, obj], [lib])
    return run(exe)


def main() -> None:
    print("Optimistic build of a small program (-G 64):")
    result = build_and_run(SMALL, threshold=64)
    conservative = build_and_run(SMALL, threshold=0)
    print("  output:", result.output.split())
    print(
        f"  cycles: {conservative.cycles} (conservative) -> {result.cycles} "
        "(optimistic): address loads became 1-for-1 address computations,\n"
        f"  so the instruction count is unchanged but "
        f"{conservative.dcache_misses - result.dcache_misses} data-cache "
        "misses and the GAT load latencies disappear.\n"
    )

    print("Optimistic build of a program with 128KB of arrays (-G 64):")
    try:
        build_and_run(TOO_BIG, threshold=64)
        print("  unexpectedly linked!")
    except LinkError as exc:
        print(f"  LINK FAILED, as the paper describes: {exc}")
        print("  (recompile with a lower threshold, i.e. -G 0)")
    result = build_and_run(TOO_BIG, threshold=0)
    print("  conservative rebuild output:", result.output.split())
    print(
        "\nThe paper's point: an optimizing linker makes this tradeoff "
        "per program, automatically, instead of making the programmer "
        "pick compiler switches."
    )


if __name__ == "__main__":
    main()
